//! Cross-backend determinism property: for every deterministic allreduce
//! algorithm, every communicator size (including non-powers-of-two and
//! sizes larger than the payload), and random f64 payloads, the simulated
//! backend and the native backend produce **bitwise identical** results.
//! This is the contract that lets one driver treat the two machines as
//! interchangeable: the machine spec chooses the schedule, the schedule
//! fixes the fold order, and the fold order fixes every bit.

use mpsim::{presets, AllreduceAlgo, Communicator, GroupCommunicator, ReduceOp};
use proptest::prelude::*;
use shmcomm::{run_native, NativeOptions};

/// Deterministic pseudo-random payload: the proptest seed drives an LCG so
/// every rank derives the same values without sharing state.
fn payload(rank: usize, n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Spread across magnitudes so reduction order matters: a fold
            // order bug shows up as a last-bit difference here.
            ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1.0e6
        })
        .collect()
}

fn body<C: Communicator>(
    comm: &mut C,
    n: usize,
    seed: u64,
    op: ReduceOp,
    algo: AllreduceAlgo,
) -> Vec<u64> {
    let mut buf = payload(comm.rank(), n, seed);
    comm.allreduce_f64s_with(&mut buf, op, algo);
    buf.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn allreduce_is_bitwise_identical_across_backends(
        p in prop_oneof![Just(2usize), Just(3usize), Just(5usize), Just(8usize)],
        // n < P, n = 0, and non-multiples of P all exercise the ragged
        // chunking paths of ring and Rabenseifner.
        n in 0usize..21,
        seed in 0u64..u64::MAX,
        op in prop_oneof![Just(ReduceOp::Sum), Just(ReduceOp::Max), Just(ReduceOp::Min)],
        algo in prop_oneof![
            Just(AllreduceAlgo::Linear),
            Just(AllreduceAlgo::OrderedLinear),
            Just(AllreduceAlgo::RecursiveDoubling),
            Just(AllreduceAlgo::Ring),
            Just(AllreduceAlgo::Rabenseifner),
        ],
    ) {
        let machine = presets::meiko_cs2(p);
        let sim = mpsim::run_spmd_default(&machine, |c| body(c, n, seed, op, algo)).unwrap();
        let native =
            run_native(&machine, &NativeOptions::default(), |c| body(c, n, seed, op, algo))
                .unwrap();
        // All ranks agree within each backend...
        for bits in &sim.per_rank {
            prop_assert_eq!(bits, &sim.per_rank[0]);
        }
        for bits in &native.per_rank {
            prop_assert_eq!(bits, &native.per_rank[0]);
        }
        // ...and the two backends agree with each other, bit for bit.
        prop_assert_eq!(&sim.per_rank, &native.per_rank);
    }

    #[test]
    fn auto_selection_is_backend_invariant(
        p in prop_oneof![Just(2usize), Just(4usize), Just(8usize)],
        n in 1usize..600,
        seed in 0u64..u64::MAX,
    ) {
        // Auto resolves through the same `select_allreduce` cost model on
        // both backends, so even the *choice* of schedule — not just its
        // execution — must coincide.
        let machine = presets::modern_cluster(p);
        let sim = mpsim::run_spmd_default(&machine, |c| {
            body(c, n, seed, ReduceOp::Sum, AllreduceAlgo::Auto)
        })
        .unwrap();
        let native = run_native(&machine, &NativeOptions::default(), |c| {
            body(c, n, seed, ReduceOp::Sum, AllreduceAlgo::Auto)
        })
        .unwrap();
        prop_assert_eq!(&sim.per_rank, &native.per_rank);
    }
}

#[test]
fn broadcast_gather_and_subcomm_collectives_match() {
    // The remaining collective surface: broadcast, gather, barrier, and
    // the split/sub-communicator path all carry bits unchanged.
    fn body<C: Communicator>(comm: &mut C) -> Vec<u64> {
        let me = comm.rank();
        let mut buf = payload(0, 7, 0xDEAD_BEEF);
        comm.broadcast_f64s(0, &mut buf);
        let gathered = comm.gather_f64s(0, &[me as f64 * 0.1 + 1.0]);
        comm.barrier();
        let mut out: Vec<u64> = buf.iter().map(|v| v.to_bits()).collect();
        if let Some(g) = gathered {
            out.extend(g.iter().map(|v| v.to_bits()));
        }
        // Odd/even sub-groups each reduce their own payload.
        let mut sub = comm.split((me % 2) as u32);
        let mut s = payload(me, 5, 7);
        sub.allreduce_f64s(&mut s, ReduceOp::Sum);
        out.extend(s.iter().map(|v| v.to_bits()));
        out
    }
    let machine = presets::meiko_cs2(6);
    let sim = mpsim::run_spmd_default(&machine, |c| body(c)).unwrap();
    let native = run_native(&machine, &NativeOptions::default(), |c| body(c)).unwrap();
    assert_eq!(sim.per_rank, native.per_rank);
}

#[test]
fn nonblocking_requests_match_the_eager_sim() {
    // mpsim's iallreduce moves data eagerly (only virtual time is
    // deferred); the native backend completes it at post time. Both
    // orderings must deliver identical bits through wait().
    fn body<C: Communicator>(comm: &mut C) -> Vec<u64> {
        let mut buf = payload(comm.rank(), 12, 42);
        let mut req = comm.iallreduce_f64s(&mut buf, ReduceOp::Sum);
        comm.work(500);
        comm.wait(&mut req);
        let me = comm.rank();
        let p = comm.size();
        let mut sreq = comm.isend_f64s((me + 1) % p, 3, &buf[..4]);
        let mut rreq = comm.irecv_f64s((me + p - 1) % p, 3);
        comm.wait(&mut sreq);
        let ring = comm.wait(&mut rreq).expect("irecv must yield the payload");
        buf.iter().chain(ring.iter()).map(|v| v.to_bits()).collect()
    }
    let machine = presets::meiko_cs2(4);
    let sim = mpsim::run_spmd_default(&machine, |c| body(c)).unwrap();
    let native = run_native(&machine, &NativeOptions::default(), |c| body(c)).unwrap();
    assert_eq!(sim.per_rank, native.per_rank);
}
