//! Cross-backend determinism for *nested* sub-communicators: collectives
//! on a `SubComm` of a `SubComm` must be bitwise identical between the
//! simulated and the native backend — the contract the fleet-parallel
//! model search rests on when each fleet sub-partitions further (and when
//! the shrink-recovery path runs inside a fleet). Covers P ∈ {4, 6, 8}
//! including ragged outer and inner group sizes.

use mpsim::{presets, Communicator, GroupCommunicator, ReduceOp};
use proptest::prelude::*;
use shmcomm::{run_native, NativeOptions};

/// Deterministic pseudo-random payload (same LCG as cross_backend.rs).
fn payload(rank: usize, n: usize, seed: u64) -> Vec<f64> {
    let mut x = seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1.0e6
        })
        .collect()
}

/// Outer color: contiguous blocks of `outer` groups; inner color: a
/// modulus within the group, so ragged inner groups arise whenever the
/// outer group size is not a multiple of `inner_mod`.
fn body<C: Communicator>(
    comm: &mut C,
    outer: usize,
    inner_mod: usize,
    n: usize,
    seed: u64,
) -> Vec<u64> {
    let me = comm.rank();
    let p = comm.size();
    let outer_color = (me * outer / p) as u32;
    let mut out: Vec<u64> = Vec::new();
    {
        let mut sub = comm.split(outer_color);
        let inner_color = (sub.rank() % inner_mod) as u32;
        let mut inner = sub.split(inner_color);
        inner.barrier();
        // Allreduce of rank-distinct payloads: a fold-order or membership
        // bug shows up in the last bit.
        let mut buf = payload(me, n, seed);
        inner.allreduce_f64s(&mut buf, ReduceOp::Sum);
        out.extend(buf.iter().map(|v| v.to_bits()));
        // Broadcast from the inner root.
        let mut b = payload(inner.members()[0], n.max(1), seed ^ 0xB0);
        inner.broadcast_f64s(0, &mut b);
        out.extend(b.iter().map(|v| v.to_bits()));
        // Gather to the inner root, root re-reduces.
        if let Some(g) = inner.gather_f64s(0, &[me as f64 + 0.25]) {
            out.extend(g.iter().map(|v| v.to_bits()));
        }
        // Scalar allreduce default impl goes through the same schedule.
        out.push(inner.allreduce_scalar(me as f64 * 0.5 + 1.0, ReduceOp::Max).to_bits());
        // Membership bookkeeping must agree too.
        out.push(inner.rank() as u64);
        out.push(inner.size() as u64);
        out.extend(inner.members().iter().map(|&r| r as u64));
    }
    // A world collective after the nested groups drop still lines up.
    out.push(comm.allreduce_scalar(1.0, ReduceOp::Sum).to_bits());
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn nested_split_collectives_bitwise_identical_across_backends(
        p in prop_oneof![Just(4usize), Just(6usize), Just(8usize)],
        outer in 2usize..4,
        inner_mod in 1usize..4,
        n in 1usize..9,
        seed in 0u64..u64::MAX,
    ) {
        let machine = presets::meiko_cs2(p);
        let sim =
            mpsim::run_spmd_default(&machine, |c| body(c, outer, inner_mod, n, seed)).unwrap();
        let native =
            run_native(&machine, &NativeOptions::default(), |c| body(c, outer, inner_mod, n, seed))
                .unwrap();
        prop_assert_eq!(&sim.per_rank, &native.per_rank);
    }
}

#[test]
fn ragged_nested_groups_sum_exactly() {
    // P = 6 -> outer {0,1,2,3} / {4,5} -> inner splits by parity of the
    // group rank: inner groups {0,2},{1,3} and {4},{5} (singletons).
    fn run<C: Communicator>(comm: &mut C) -> (usize, f64) {
        let me = comm.rank();
        let mut sub = comm.split(u32::from(me >= 4));
        let inner_color = (sub.rank() % 2) as u32;
        let mut inner = sub.split(inner_color);
        let sum = inner.allreduce_scalar(me as f64, ReduceOp::Sum);
        (inner.size(), sum)
    }
    let machine = presets::meiko_cs2(6);
    let sim = mpsim::run_spmd_default(&machine, |c| run(c)).unwrap();
    let native = run_native(&machine, &NativeOptions::default(), |c| run(c)).unwrap();
    assert_eq!(sim.per_rank, native.per_rank);
    let expect = [(2, 2.0), (2, 4.0), (2, 2.0), (2, 4.0), (1, 4.0), (1, 5.0)];
    for (rank, (size, sum)) in sim.per_rank.iter().enumerate() {
        assert_eq!((*size, *sum), expect[rank], "rank {rank}");
    }
}
