//! The native SPMD launcher: one OS thread per rank over a full `mpsc`
//! channel mesh, with per-rank panic capture that classifies failures
//! into typed [`CommError`]s (a poisoned lock or a vanished peer never
//! escapes as a raw panic).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use mpsim::error::SimError;
use mpsim::traits::CommError;
use mpsim::{MachineSpec, RankStats, RunStats};

use crate::comm::{Msg, NativeAbort, NativeComm, ReplCheck};

/// Knobs for a native run.
#[derive(Debug, Clone)]
pub struct NativeOptions {
    /// Wall-clock ceiling for any single blocking receive; turns a hang
    /// (peer died without tripping the abort flag) into a typed
    /// [`CommError::Timeout`].
    pub recv_timeout: Duration,
    /// Cross-check that collective results and `verify_replicated` data
    /// are bitwise identical on every rank (the native analogue of the
    /// simulator's replication verifier).
    pub check_replication: bool,
    /// Deterministic fault plan (shared with the simulator's
    /// [`mpsim::SimOptions::fault`]). Only `Crash` specs are honored —
    /// the native transport has no place to drop, delay, or corrupt a
    /// message in flight — and a due crash raises a typed
    /// `SimError::RankCrashed` through [`CommError::Sim`], so a
    /// fault-tolerant supervisor sees the same diagnosis on both
    /// backends. Fired flags are shared across clones, exactly like the
    /// simulator's, so one-shot faults stay spent across re-runs.
    pub fault: Option<mpsim::FaultPlan>,
}

impl Default for NativeOptions {
    fn default() -> Self {
        NativeOptions {
            recv_timeout: Duration::from_secs(120),
            check_replication: false,
            fault: None,
        }
    }
}

impl NativeOptions {
    /// Options with replication checking enabled — the native
    /// counterpart of [`mpsim::SimOptions::verified`].
    pub fn verified() -> Self {
        NativeOptions { check_replication: true, ..NativeOptions::default() }
    }
}

/// What a native run returns when every rank completes.
#[derive(Debug)]
pub struct NativeOutput<T> {
    /// Each rank's return value, by rank.
    pub per_rank: Vec<T>,
    /// Elapsed wall-clock seconds (max over ranks).
    pub elapsed: f64,
    /// Per-rank statistics in the simulator's report shapes.
    pub ranks: Vec<RankStats>,
    /// Aggregate statistics.
    pub stats: RunStats,
}

/// Rough severity for picking the *cause* among multiple failed ranks:
/// a rank that aborted because another failed first, or found a channel
/// already closed, is a symptom, not the disease.
fn severity(e: &CommError) -> u8 {
    match e {
        CommError::Sim(SimError::Aborted { .. }) => 0,
        CommError::Disconnected { .. } | CommError::Timeout { .. } => 1,
        _ => 2,
    }
}

/// Typed aborts travel as panics by design (the only way to unwind a
/// rank body mid-collective), so the default hook's message-and-backtrace
/// for them is pure noise — e.g. every injected crash under a
/// fault-tolerant supervisor would print one. Install, once per process,
/// a hook that stays silent for [`NativeAbort`] payloads and defers to
/// the previous hook for everything else (genuine bugs still report).
fn install_quiet_abort_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<NativeAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Turn a rank thread's panic payload into a typed error.
fn classify(rank: usize, payload: Box<dyn std::any::Any + Send>) -> CommError {
    match payload.downcast::<NativeAbort>() {
        Ok(ab) => ab.0,
        Err(payload) => {
            let detail = if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                "non-string panic payload".to_string()
            };
            if detail.contains("PoisonError") || detail.contains("poisoned") {
                CommError::Poisoned { rank, detail }
            } else {
                CommError::RankPanicked { rank, detail }
            }
        }
    }
}

/// Run `body` as an SPMD program on `machine.p` OS threads, one rank
/// each, and wait for all of them.
///
/// The machine spec contributes only its *decisions* (rank count,
/// default/auto allreduce algorithm); all timing is measured, not
/// modeled. Rank bodies communicate through [`NativeComm`], whose
/// collective schedules are bitwise mirrors of the simulator's.
///
/// # Errors
///
/// If any rank fails, returns the most causal [`CommError`] (typed
/// aborts outrank disconnects/timeouts, which outrank secondary
/// "another rank failed first" aborts).
pub fn run_native<T, F>(
    machine: &MachineSpec,
    opts: &NativeOptions,
    body: F,
) -> Result<NativeOutput<T>, CommError>
where
    T: Send,
    F: Fn(&mut NativeComm) -> T + Sync,
{
    let p = machine.p;
    if p == 0 {
        return Err(CommError::InvalidMachine { detail: "machine has zero ranks".into() });
    }
    install_quiet_abort_hook();

    // Full channel mesh: tx_grid[src][dst] feeds rx_grid[dst][src].
    let mut tx_grid: Vec<Vec<Sender<Msg>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut rx_grid: Vec<Vec<Receiver<Msg>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for tx_row in tx_grid.iter_mut() {
        for rx_row in rx_grid.iter_mut() {
            let (tx, rx) = channel();
            tx_row.push(tx);
            rx_row.push(rx);
        }
    }

    let abort = Arc::new(AtomicBool::new(false));
    let repl = if opts.check_replication { Some(Arc::new(ReplCheck::new())) } else { None };

    let joined: Vec<Result<(T, RankStats), CommError>> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(p);
        for (rank, (txs, rxs)) in tx_grid.into_iter().zip(rx_grid).enumerate() {
            let body = &body;
            let abort = Arc::clone(&abort);
            let repl = repl.clone();
            let machine = machine.clone();
            let recv_timeout = opts.recv_timeout;
            let fault = opts.fault.clone();
            handles.push(s.spawn(move || {
                let rank_abort = Arc::clone(&abort);
                let mut comm =
                    NativeComm::new(rank, p, machine, txs, rxs, abort, repl, recv_timeout, fault);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let value = body(&mut comm);
                    let stats = comm.stats();
                    (value, stats)
                }));
                if result.is_err() {
                    // Any escape — typed or not — must wake peers blocked
                    // in receives, or they ride out the full timeout.
                    rank_abort.store(true, Ordering::SeqCst);
                }
                result.map_err(|payload| classify(rank, payload))
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(r) => r,
                Err(payload) => Err(classify(rank, payload)),
            })
            .collect()
    });

    let mut per_rank = Vec::with_capacity(p);
    let mut ranks = Vec::with_capacity(p);
    let mut worst: Option<CommError> = None;
    for r in joined {
        match r {
            Ok((value, stats)) => {
                per_rank.push(value);
                ranks.push(stats);
            }
            Err(e) => {
                let replace = match &worst {
                    Some(w) => severity(&e) > severity(w),
                    None => true,
                };
                if replace {
                    worst = Some(e);
                }
            }
        }
    }
    if let Some(e) = worst {
        return Err(e);
    }
    let elapsed = ranks.iter().map(|r| r.elapsed).fold(0.0, f64::max);
    let stats = RunStats::from_ranks(&ranks);
    Ok(NativeOutput { per_rank, elapsed, ranks, stats })
}
