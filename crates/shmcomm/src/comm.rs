//! The per-rank native communicator: typed point-to-point messaging over
//! `mpsc` channels, tag-matched with a per-source stash, plus wall-clock
//! phase attribution feeding the same [`RankStats`] shapes the simulator
//! reports.
//!
//! # Timing model
//!
//! Where `mpsim` *charges* virtual time, this backend *measures* real
//! time. Every communication entry point closes the open interval since
//! the previous one and books it as **compute** in the current phase
//! bucket (whatever the rank did between comm calls was its own code);
//! the body of a send (serialize + enqueue) is booked as **comm**, and
//! time spent blocked inside a receive is booked as **idle** — waiting on
//! a peer is the native analogue of the simulator's wire-wait. The
//! buckets therefore partition elapsed wall time exactly like the
//! simulated clock's do: `Σ phases[i].total() == elapsed`.
//!
//! [`NativeComm::work`] is a timing no-op: the real kernel already ran on
//! this thread and its duration lands in the compute bucket implicitly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mpsim::error::SimError;
use mpsim::traits::CommError;
use mpsim::{MachineSpec, PhaseStats, RankStats, DEFAULT_PHASE};

/// How long a blocked receive sleeps per poll before re-checking the
/// abort flag and its deadline.
const RECV_SLICE: Duration = Duration::from_millis(10);

/// A typed message between ranks: `f64` payloads travel verbatim (no
/// byte codec — both endpoints share an address space), so bit patterns
/// are preserved trivially.
#[derive(Debug)]
pub(crate) struct Msg {
    pub tag: u64,
    pub values: Vec<f64>,
}

/// Panic payload carrying a typed [`CommError`] out of a rank thread;
/// `run_native` catches and classifies it, so backend failures surface
/// as errors, never as raw panics.
pub(crate) struct NativeAbort(pub CommError);

/// Cross-rank registry asserting that replicated values are bitwise
/// identical on every rank, mirroring the simulator's replication
/// verifier: the first rank to post a `(comm, seq, label)` key stores
/// its hash, later ranks compare, and the slot is retired once the whole
/// group has posted.
pub(crate) struct ReplCheck {
    slots: Mutex<ReplSlots>,
}

/// `(comm_id, seq)` → (label, first poster's hash, ranks posted so far).
type ReplSlots = std::collections::BTreeMap<(u64, u64), (String, u64, usize)>;

/// Registry id of the world communicator (matches the simulator's).
pub(crate) const WORLD_COMM: u64 = 0;
/// Registry id for user-level `verify_replicated` checks (matches the
/// simulator's).
pub(crate) const USER_REPL_COMM: u64 = u64::MAX;

impl ReplCheck {
    pub(crate) fn new() -> Self {
        ReplCheck { slots: Mutex::new(std::collections::BTreeMap::new()) }
    }

    /// Post `hash` as this rank's digest for slot `(comm, seq)`; `group`
    /// ranks are expected in total.
    pub(crate) fn check(
        &self,
        rank: usize,
        comm: u64,
        seq: u64,
        group: usize,
        label: &str,
        hash: u64,
    ) -> Result<(), CommError> {
        let mut slots = match self.slots.lock() {
            Ok(g) => g,
            Err(_) => {
                return Err(CommError::Poisoned {
                    rank,
                    detail: "replication registry (another rank panicked mid-check)".into(),
                })
            }
        };
        let entry = slots.entry((comm, seq)).or_insert_with(|| (label.to_string(), hash, 0usize));
        if entry.0 != label || entry.1 != hash {
            return Err(CommError::Replication {
                rank,
                label: label.to_string(),
                detail: format!(
                    "hash {:#018x} (label {:?}) != first poster's {:#018x} (label {:?})",
                    hash, label, entry.1, entry.0
                ),
            });
        }
        entry.2 += 1;
        if entry.2 >= group {
            slots.remove(&(comm, seq));
        }
        Ok(())
    }
}

/// Wall-clock time and traffic attributed to one phase bucket.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bucket {
    pub compute: f64,
    pub comm: f64,
    pub idle: f64,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recvd: u64,
    pub bytes_recvd: u64,
    pub collectives: u64,
}

/// What a pending [`NativeReq`] still has to do at wait time.
#[derive(Debug)]
pub(crate) enum ReqKind {
    /// Already complete (sends run eagerly; non-blocking collectives run
    /// their data movement at post, like the simulator's).
    Ready,
    /// A posted receive; the wait pulls the matching message.
    Recv { src: usize, tag: u64 },
}

/// Handle for a non-blocking operation on the native backend. Must be
/// retired by exactly one [`NativeComm::wait`] / [`NativeComm::waitall`];
/// dropping an unwaited request panics (same contract as the simulator's
/// [`mpsim::Request`]).
#[must_use = "non-blocking requests must be waited"]
#[derive(Debug)]
pub struct NativeReq {
    pub(crate) rank: usize,
    pub(crate) kind: ReqKind,
    pub(crate) done: bool,
}

impl Drop for NativeReq {
    fn drop(&mut self) {
        if !self.done && !std::thread::panicking() {
            panic!("rank {}: non-blocking request dropped without wait", self.rank);
        }
    }
}

/// One rank's endpoint of the native shared-memory machine: the
/// wall-clock implementor of [`mpsim::Communicator`].
pub struct NativeComm {
    rank: usize,
    size: usize,
    machine: MachineSpec,
    /// Start of this rank's body, origin of [`NativeComm::now`].
    start: Instant,
    /// End of the last interval already booked into a bucket.
    last_stamp: Instant,
    /// `senders[dst]` enqueues into `dst`'s inbox from this rank.
    senders: Vec<Sender<Msg>>,
    /// `inboxes[src]` receives what `src` sent to this rank.
    inboxes: Vec<Receiver<Msg>>,
    /// Per-source out-of-order messages already drained from the channel.
    stash: Vec<VecDeque<Msg>>,
    pub(crate) abort: Arc<AtomicBool>,
    recv_timeout: Duration,
    /// Replication registry; `None` when checking is off.
    repl: Option<Arc<ReplCheck>>,
    /// Deterministic crash injection (see `NativeOptions::fault`).
    fault: Option<mpsim::FaultPlan>,
    /// Messages this rank has sent — the native send-sequence axis
    /// `FaultTrigger::AtSendSeq` counts along.
    send_seq: u64,
    pub(crate) coll_seq: u64,
    repl_seq: u64,
    phase_names: Vec<String>,
    buckets: Vec<Bucket>,
    phase_stack: Vec<usize>,
    cur_phase: usize,
}

impl NativeComm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine: MachineSpec,
        senders: Vec<Sender<Msg>>,
        inboxes: Vec<Receiver<Msg>>,
        abort: Arc<AtomicBool>,
        repl: Option<Arc<ReplCheck>>,
        recv_timeout: Duration,
        fault: Option<mpsim::FaultPlan>,
    ) -> Self {
        let now = Instant::now();
        NativeComm {
            rank,
            size,
            machine,
            start: now,
            last_stamp: now,
            senders,
            stash: (0..size).map(|_| VecDeque::new()).collect(),
            inboxes,
            abort,
            recv_timeout,
            repl,
            fault,
            send_seq: 0,
            coll_seq: 0,
            repl_seq: 0,
            phase_names: vec![DEFAULT_PHASE.to_string()],
            buckets: vec![Bucket::default()],
            phase_stack: Vec::new(),
            cur_phase: 0,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine description this native run is being compared against.
    /// Only its *decision* surface matters here — algorithm selection
    /// (`allreduce`, `network` for `Auto`) — so both backends take
    /// identical branches; its timing parameters predict nothing about
    /// real silicon.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Wall-clock seconds since this rank's body started.
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Timing no-op: real compute is measured implicitly (the kernel
    /// already ran on this thread; its duration lands in the current
    /// phase's compute bucket at the next comm call). Kept so SPMD
    /// bodies written against the simulator run unchanged.
    pub fn work(&mut self, _ops: u64) {}

    /// Raise a typed backend failure: flag the abort (so peers blocked in
    /// receives fail fast instead of timing out) and unwind with the
    /// error as payload for `run_native` to classify.
    pub(crate) fn fail(&self, e: CommError) -> ! {
        self.abort.store(true, Ordering::SeqCst);
        std::panic::panic_any(NativeAbort(e));
    }

    // ---- wall-clock bookkeeping -------------------------------------

    /// Book the open interval since `last_stamp` as compute in the
    /// current phase (the rank was running its own code).
    pub(crate) fn stamp_compute(&mut self) {
        let now = Instant::now();
        self.buckets[self.cur_phase].compute += now.duration_since(self.last_stamp).as_secs_f64();
        self.last_stamp = now;
    }

    /// Book the open interval as communication endpoint work.
    fn stamp_comm(&mut self) {
        let now = Instant::now();
        self.buckets[self.cur_phase].comm += now.duration_since(self.last_stamp).as_secs_f64();
        self.last_stamp = now;
    }

    /// Book the open interval as idle (blocked waiting on a peer).
    fn stamp_idle(&mut self) {
        let now = Instant::now();
        self.buckets[self.cur_phase].idle += now.duration_since(self.last_stamp).as_secs_f64();
        self.last_stamp = now;
    }

    /// Open a named phase span; same nesting semantics as
    /// [`mpsim::Comm::enter_phase`].
    pub fn enter_phase(&mut self, name: &str) {
        self.stamp_compute();
        let idx = match self.phase_names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.phase_names.push(name.to_string());
                self.buckets.push(Bucket::default());
                self.phase_names.len() - 1
            }
        };
        self.phase_stack.push(idx);
        self.cur_phase = idx;
    }

    /// Close the innermost open phase span.
    pub fn exit_phase(&mut self) {
        self.stamp_compute();
        self.phase_stack.pop();
        self.cur_phase = self.phase_stack.last().copied().unwrap_or(0);
    }

    /// Snapshot this rank's statistics in the same shape the simulator
    /// reports: per-phase buckets (synthetic `"other"` first) that
    /// partition elapsed wall time.
    pub fn stats(&mut self) -> RankStats {
        self.stamp_compute();
        let phases: Vec<PhaseStats> = self
            .phase_names
            .iter()
            .zip(&self.buckets)
            .map(|(name, b)| PhaseStats {
                name: name.clone(),
                compute: b.compute,
                comm: b.comm,
                idle: b.idle,
                hidden_comm: 0.0,
                msgs_sent: b.msgs_sent,
                bytes_sent: b.bytes_sent,
                msgs_recvd: b.msgs_recvd,
                bytes_recvd: b.bytes_recvd,
                collectives: b.collectives,
            })
            .collect();
        RankStats {
            rank: self.rank,
            elapsed: self.last_stamp.duration_since(self.start).as_secs_f64(),
            compute: phases.iter().map(|p| p.compute).sum(),
            comm: phases.iter().map(|p| p.comm).sum(),
            idle: phases.iter().map(|p| p.idle).sum(),
            hidden_comm: 0.0,
            msgs_sent: phases.iter().map(|p| p.msgs_sent).sum(),
            bytes_sent: phases.iter().map(|p| p.bytes_sent).sum(),
            msgs_recvd: phases.iter().map(|p| p.msgs_recvd).sum(),
            bytes_recvd: phases.iter().map(|p| p.bytes_recvd).sum(),
            collectives: self.coll_seq,
            phases,
        }
    }

    // ---- point-to-point ---------------------------------------------

    /// Blocking typed send. Buffered (the channel is unbounded), so
    /// send-then-recv exchange patterns cannot deadlock — the same
    /// guarantee the simulator's buffered sends give the collective
    /// schedules.
    pub fn send_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) {
        self.stamp_compute();
        // Same injection point as the simulated transport: a due crash
        // fires at the send boundary, before any bytes move, so peers see
        // a vanished rank rather than a half-delivered collective.
        if let Some(plan) = &self.fault {
            if plan.crash_now(self.rank, self.send_seq, self.start.elapsed().as_secs_f64()) {
                let phase = self.phase_names[self.cur_phase].clone();
                self.fail(CommError::Sim(SimError::RankCrashed {
                    rank: self.rank,
                    seq: self.send_seq + 1,
                    phase,
                }));
            }
        }
        self.send_seq += 1;
        if dst >= self.size {
            self.fail(CommError::Sim(SimError::InvalidMachine(format!(
                "rank {}: send to nonexistent rank {dst}",
                self.rank
            ))));
        }
        let b = &mut self.buckets[self.cur_phase];
        b.msgs_sent += 1;
        b.bytes_sent += (values.len() * 8) as u64;
        if self.senders[dst].send(Msg { tag, values: values.to_vec() }).is_err() {
            self.fail(CommError::Disconnected {
                rank: self.rank,
                peer: dst,
                detail: format!("send of tag {tag} found the peer's inbox closed"),
            });
        }
        self.stamp_comm();
    }

    /// Blocking typed receive of the message from `src` carrying `tag`.
    /// Time spent blocked is booked as idle in the current phase.
    pub fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        self.stamp_compute();
        let msg = self.pull(src, tag);
        let b = &mut self.buckets[self.cur_phase];
        b.msgs_recvd += 1;
        b.bytes_recvd += (msg.values.len() * 8) as u64;
        self.stamp_idle();
        msg.values
    }

    /// Drain `src`'s channel until the message tagged `tag` appears,
    /// stashing out-of-order messages. Fails typed: abort flag →
    /// `Aborted`, closed channel → `Disconnected`, deadline →
    /// `Timeout`.
    fn pull(&mut self, src: usize, tag: u64) -> Msg {
        if src >= self.size {
            self.fail(CommError::Sim(SimError::InvalidMachine(format!(
                "rank {}: recv from nonexistent rank {src}",
                self.rank
            ))));
        }
        if let Some(pos) = self.stash[src].iter().position(|m| m.tag == tag) {
            if let Some(m) = self.stash[src].remove(pos) {
                return m;
            }
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            if self.abort.load(Ordering::SeqCst) {
                self.fail(CommError::Sim(SimError::Aborted { rank: self.rank }));
            }
            match self.inboxes[src].recv_timeout(RECV_SLICE) {
                Ok(m) if m.tag == tag => return m,
                Ok(m) => self.stash[src].push_back(m),
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        self.fail(CommError::Timeout { rank: self.rank, from: src, tag });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.fail(CommError::Disconnected {
                        rank: self.rank,
                        peer: src,
                        detail: format!("peer's thread is gone while waiting for tag {tag}"),
                    });
                }
            }
        }
    }

    // ---- non-blocking -----------------------------------------------

    /// Non-blocking send. Data moves eagerly (the channel buffers), so
    /// the returned request is already complete; it must still be waited
    /// to satisfy the request discipline.
    pub fn isend_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) -> NativeReq {
        self.send_f64s(dst, tag, values);
        NativeReq { rank: self.rank, kind: ReqKind::Ready, done: false }
    }

    /// Post a non-blocking receive; the matching [`NativeComm::wait`]
    /// pulls the payload.
    pub fn irecv_f64s(&mut self, src: usize, tag: u64) -> NativeReq {
        NativeReq { rank: self.rank, kind: ReqKind::Recv { src, tag }, done: false }
    }

    /// Retire a request. Receives return `Some(payload)`; completed
    /// sends and collectives return `None`. Waiting twice is a typed
    /// error, as on the simulator.
    pub fn wait(&mut self, req: &mut NativeReq) -> Option<Vec<f64>> {
        if req.done {
            self.fail(CommError::Request {
                rank: self.rank,
                detail: "request waited twice".into(),
            });
        }
        req.done = true;
        match req.kind {
            ReqKind::Ready => None,
            ReqKind::Recv { src, tag } => {
                self.stamp_compute();
                let msg = self.pull(src, tag);
                let b = &mut self.buckets[self.cur_phase];
                b.msgs_recvd += 1;
                b.bytes_recvd += (msg.values.len() * 8) as u64;
                self.stamp_idle();
                Some(msg.values)
            }
        }
    }

    /// Retire every request in order, collecting each wait's result.
    pub fn waitall(&mut self, reqs: &mut [NativeReq]) -> Vec<Option<Vec<f64>>> {
        reqs.iter_mut().map(|r| self.wait(r)).collect()
    }

    // ---- replication checking ---------------------------------------

    /// Whether replication-invariant hashing is enabled for this run.
    pub fn checks_replication(&self) -> bool {
        self.repl.is_some()
    }

    /// Count a collective in the current phase and allocate its tag
    /// (collective tags live above all user tags, same split as the
    /// simulator's).
    pub(crate) fn coll_enter(&mut self) -> u64 {
        self.coll_seq += 1;
        self.buckets[self.cur_phase].collectives += 1;
        crate::collectives::COLL_TAG_BASE + self.coll_seq
    }

    /// Hash a collective's replicated result and cross-check it against
    /// the other ranks (no-op unless replication checking is on).
    pub(crate) fn check_replicated_result(&mut self, label: &str, buf: &[f64]) {
        let Some(repl) = self.repl.clone() else { return };
        let hash = mpsim::hash_f64s(buf);
        if let Err(e) = repl.check(self.rank, WORLD_COMM, self.coll_seq, self.size, label, hash) {
            self.fail(e);
        }
    }

    /// Group-scoped replication check used by `NativeSubComm`.
    pub(crate) fn check_replicated_in(
        &mut self,
        comm_id: u64,
        seq: u64,
        group: usize,
        label: &str,
        buf: &[f64],
    ) {
        let Some(repl) = self.repl.clone() else { return };
        let hash = mpsim::hash_f64s(buf);
        if let Err(e) = repl.check(self.rank, comm_id, seq, group, label, hash) {
            self.fail(e);
        }
    }

    /// Assert that `data` is bitwise identical on every rank. Collective
    /// (all ranks must call it in the same order); no-op unless
    /// replication checking is enabled.
    pub fn verify_replicated(&mut self, label: &str, data: &[f64]) {
        let Some(repl) = self.repl.clone() else { return };
        self.repl_seq += 1;
        let hash = mpsim::hash_f64s(data);
        if let Err(e) = repl.check(self.rank, USER_REPL_COMM, self.repl_seq, self.size, label, hash)
        {
            self.fail(e);
        }
    }
}
