//! [`Communicator`] / [`GroupCommunicator`] implementations for the
//! native backend: pure delegation to the inherent methods, so generic
//! SPMD drivers written against `mpsim::traits` run here unchanged.

use mpsim::traits::{Communicator, GroupCommunicator};
use mpsim::{AllreduceAlgo, MachineSpec, ReduceOp};

use crate::comm::{NativeComm, NativeReq};
use crate::subcomm::NativeSubComm;

impl Communicator for NativeComm {
    type Req = NativeReq;
    type Group<'g> = NativeSubComm<'g>;

    fn rank(&self) -> usize {
        NativeComm::rank(self)
    }
    fn size(&self) -> usize {
        NativeComm::size(self)
    }
    fn machine(&self) -> &MachineSpec {
        NativeComm::machine(self)
    }
    fn now(&self) -> f64 {
        NativeComm::now(self)
    }
    fn work(&mut self, ops: u64) {
        NativeComm::work(self, ops);
    }
    fn enter_phase(&mut self, name: &str) {
        NativeComm::enter_phase(self, name);
    }
    fn exit_phase(&mut self) {
        NativeComm::exit_phase(self);
    }
    fn send_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) {
        NativeComm::send_f64s(self, dst, tag, values);
    }
    fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        NativeComm::recv_f64s(self, src, tag)
    }
    fn isend_f64s(&mut self, dst: usize, tag: u64, values: &[f64]) -> NativeReq {
        NativeComm::isend_f64s(self, dst, tag, values)
    }
    fn irecv_f64s(&mut self, src: usize, tag: u64) -> NativeReq {
        NativeComm::irecv_f64s(self, src, tag)
    }
    fn wait(&mut self, req: &mut NativeReq) -> Option<Vec<f64>> {
        NativeComm::wait(self, req)
    }
    fn waitall(&mut self, reqs: &mut [NativeReq]) -> Vec<Option<Vec<f64>>> {
        NativeComm::waitall(self, reqs)
    }
    fn barrier(&mut self) {
        NativeComm::barrier(self);
    }
    fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        NativeComm::broadcast_f64s(self, root, buf);
    }
    fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>> {
        NativeComm::gather_f64s(self, root, mine)
    }
    fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        NativeComm::allreduce_f64s(self, buf, op);
    }
    fn allreduce_f64s_with(&mut self, buf: &mut [f64], op: ReduceOp, algo: AllreduceAlgo) {
        NativeComm::allreduce_f64s_with(self, buf, op, algo);
    }
    fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        NativeComm::allreduce_scalar(self, value, op)
    }
    fn iallreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) -> NativeReq {
        NativeComm::iallreduce_f64s(self, buf, op)
    }
    fn iallreduce_f64s_with(
        &mut self,
        buf: &mut [f64],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> NativeReq {
        NativeComm::iallreduce_f64s_with(self, buf, op, algo)
    }
    fn checks_replication(&self) -> bool {
        NativeComm::checks_replication(self)
    }
    fn verify_replicated(&mut self, label: &str, data: &[f64]) {
        NativeComm::verify_replicated(self, label, data);
    }
    fn split(&mut self, color: u32) -> NativeSubComm<'_> {
        NativeComm::split(self, color)
    }
}

impl GroupCommunicator for NativeSubComm<'_> {
    type Child<'c>
        = NativeSubComm<'c>
    where
        Self: 'c;

    fn rank(&self) -> usize {
        NativeSubComm::rank(self)
    }
    fn size(&self) -> usize {
        NativeSubComm::size(self)
    }
    fn members(&self) -> &[usize] {
        NativeSubComm::members(self)
    }
    fn work(&mut self, ops: u64) {
        NativeSubComm::work(self, ops);
    }
    fn enter_phase(&mut self, name: &str) {
        self.world().enter_phase(name);
    }
    fn exit_phase(&mut self) {
        self.world().exit_phase();
    }
    fn barrier(&mut self) {
        NativeSubComm::barrier(self);
    }
    fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        NativeSubComm::broadcast_f64s(self, root, buf);
    }
    fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        NativeSubComm::allreduce_f64s(self, buf, op);
    }
    fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        NativeSubComm::allreduce_scalar(self, value, op)
    }
    fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>> {
        NativeSubComm::gather_f64s(self, root, mine)
    }
    fn split(&mut self, color: u32) -> NativeSubComm<'_> {
        NativeSubComm::split(self, color)
    }
}
