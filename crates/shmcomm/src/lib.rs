//! # shmcomm — the native shared-memory backend for the SPMD driver
//!
//! Where [`mpsim`] runs the SPMD program on OS threads under *virtual*
//! time from LogGP cost models, this crate runs the very same program on
//! OS threads under *wall-clock* time: one `std::thread` per rank, an
//! `mpsc` channel mesh for typed messages, and the exact collective
//! schedules of the simulator (recursive doubling, ring, Rabenseifner,
//! linear — same fold orders, same non-power-of-two parking), so the
//! numerical results are bitwise identical across backends while the
//! reported times come from real silicon.
//!
//! Both backends implement [`mpsim::Communicator`]; a driver written
//! against the trait picks its machine with one call:
//!
//! ```
//! use mpsim::{presets, Communicator, ReduceOp};
//! use shmcomm::{run_native, NativeOptions};
//!
//! fn body<C: Communicator>(comm: &mut C) -> f64 {
//!     let mut local = vec![comm.rank() as f64 + 1.0];
//!     comm.allreduce_f64s(&mut local, ReduceOp::Sum);
//!     local[0]
//! }
//!
//! let machine = presets::meiko_cs2(4);
//! let sim = mpsim::run_spmd_default(&machine, |c| body(c)).unwrap();
//! let native = run_native(&machine, &NativeOptions::default(), |c| body(c)).unwrap();
//! assert_eq!(sim.per_rank, native.per_rank); // bitwise identical
//! ```
//!
//! ## Timing and reporting
//!
//! Per-phase wall-clock timing feeds the same [`mpsim::RankStats`] /
//! [`mpsim::PhaseStats`] shapes the simulator reports (see
//! [`comm`] for the attribution rules), so `xtask report`'s tables and
//! the calibration harness consume either backend's stats unchanged.
//!
//! ## Failure model
//!
//! Backend failures are *typed*: a rank that panics, a poisoned lock, a
//! disconnected channel, or a receive timeout all surface from
//! [`run_native`] as [`mpsim::CommError`] variants, never as raw panics
//! on the caller's thread.

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod engine;
pub mod subcomm;
mod traits_impl;

pub use comm::{NativeComm, NativeReq};
pub use engine::{run_native, NativeOptions, NativeOutput};
pub use subcomm::NativeSubComm;
