//! Collectives on the native backend — the *same schedules, same fold
//! orders* as [`mpsim::collectives`], so results are bitwise identical
//! across backends under every algorithm.
//!
//! # Determinism contract
//!
//! Each schedule below is a line-for-line mirror of its simulated
//! counterpart: the sequence of sends, receives, and `ReduceOp::fold`
//! calls a rank performs depends only on `(algorithm, P, length)`. There
//! is no shared accumulator and no atomics race on payloads — every
//! partial reduction is owned by exactly one thread, and values cross
//! threads only through channel messages — so arrival timing can never
//! reorder a floating-point fold. `Auto` resolves through the same
//! [`mpsim::select_allreduce`] before anything is posted, keeping the
//! *algorithm choice* itself identical across backends.

use mpsim::error::SimError;
use mpsim::traits::CommError;
use mpsim::{AllreduceAlgo, ReduceOp};

use crate::comm::{NativeComm, NativeReq, ReqKind};

/// Base of the tag space reserved for collectives (above all user tags;
/// same split as the simulator's).
pub(crate) const COLL_TAG_BASE: u64 = 1 << 32;

impl NativeComm {
    /// Raise a collective-argument mismatch as a typed error.
    fn mismatch(&self, detail: String) -> ! {
        self.fail(CommError::Sim(SimError::CollectiveMismatch { rank: self.rank(), detail }));
    }

    /// Synchronize all ranks (dissemination barrier, `ceil(log2 P)` rounds).
    pub fn barrier(&mut self) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter();
        let me = self.rank();
        let mut k = 1usize;
        while k < p {
            let to = (me + k) % p;
            let from = (me + p - k) % p;
            self.send_f64s(to, tag, &[]);
            let _ = self.recv_f64s(from, tag);
            k <<= 1;
        }
    }

    /// Broadcast `buf` from `root` to all ranks (binomial tree, same
    /// shape as the simulator's).
    pub fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.coll_enter();
        let me = self.rank();
        let vrank = (me + p - root) % p;

        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let src = (me + p - mask) % p;
                let data = self.recv_f64s(src, tag);
                if data.len() != buf.len() {
                    self.mismatch(format!(
                        "broadcast buffer length {} != incoming {}",
                        buf.len(),
                        data.len()
                    ));
                }
                buf.copy_from_slice(&data);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let dst = (me + mask) % p;
                let copy = buf.to_vec();
                self.send_f64s(dst, tag, &copy);
            }
            mask >>= 1;
        }
        self.check_replicated_result("broadcast result", buf);
    }

    /// Broadcast a single `u64` from `root` via the f64 tree (bit
    /// patterns survive because payloads travel verbatim).
    pub fn broadcast_u64(&mut self, root: usize, value: u64) -> u64 {
        let p = self.size();
        if p <= 1 {
            return value;
        }
        let mut buf = [f64::from_bits(value)];
        self.broadcast_f64s(root, &mut buf);
        buf[0].to_bits()
    }

    /// Allreduce with the machine's default algorithm.
    pub fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        let algo = self.machine().allreduce;
        self.allreduce_f64s_with(buf, op, algo);
    }

    /// Allreduce with an explicit algorithm. `Auto` resolves through the
    /// same pure selection function as the simulator — on the machine
    /// spec this run is compared against — so both backends dispatch to
    /// the same concrete schedule.
    pub fn allreduce_f64s_with(&mut self, buf: &mut [f64], op: ReduceOp, algo: AllreduceAlgo) {
        if self.size() <= 1 {
            return;
        }
        let algo = match algo {
            AllreduceAlgo::Auto => {
                mpsim::select_allreduce(self.size(), buf.len(), &self.machine().network)
            }
            other => other,
        };
        let tag = self.coll_enter();
        match algo {
            AllreduceAlgo::Linear | AllreduceAlgo::OrderedLinear => {
                self.allreduce_linear(buf, op, tag)
            }
            AllreduceAlgo::RecursiveDoubling => self.allreduce_rd(buf, op, tag),
            AllreduceAlgo::Ring => self.allreduce_ring(buf, op, tag),
            AllreduceAlgo::Rabenseifner => self.allreduce_rabenseifner(buf, op, tag),
            AllreduceAlgo::Hierarchical => self.allreduce_hierarchical(buf, op, tag),
            AllreduceAlgo::Auto => unreachable!("Auto resolved to a concrete algorithm above"),
        }
        self.check_replicated_result("allreduce result", buf);
    }

    /// Allreduce of a single scalar; returns the reduced value.
    pub fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        let mut buf = [value];
        self.allreduce_f64s(&mut buf, op);
        buf[0]
    }

    /// Non-blocking allreduce with the machine's default algorithm.
    pub fn iallreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) -> NativeReq {
        let algo = self.machine().allreduce;
        self.iallreduce_f64s_with(buf, op, algo)
    }

    /// Non-blocking allreduce with an explicit algorithm. Like the
    /// simulator's, the data movement runs *eagerly*: on return `buf`
    /// already holds the reduction — bitwise identical to the blocking
    /// call — and the returned request is complete. The simulator defers
    /// only virtual wire time (hidden behind later `work`); on real
    /// silicon there is no deferred wire to hide, so the pipelined
    /// driver degenerates gracefully to its synchronous schedule.
    pub fn iallreduce_f64s_with(
        &mut self,
        buf: &mut [f64],
        op: ReduceOp,
        algo: AllreduceAlgo,
    ) -> NativeReq {
        self.allreduce_f64s_with(buf, op, algo);
        NativeReq { rank: self.rank(), kind: ReqKind::Ready, done: false }
    }

    /// Gather to rank 0 in rank order, then send the result back to
    /// every rank. Mirrors the simulator's linear schedule exactly
    /// (fold order: rank 0's own buffer, then ranks 1..P).
    fn allreduce_linear(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        if me == 0 {
            for src in 1..p {
                let data = self.recv_f64s(src, tag);
                if data.len() != buf.len() {
                    self.mismatch(format!(
                        "allreduce length {} != rank {src}'s {}",
                        buf.len(),
                        data.len()
                    ));
                }
                op.fold(buf, &data);
            }
            for dst in 1..p {
                let copy = buf.to_vec();
                self.send_f64s(dst, tag, &copy);
            }
        } else {
            let copy = buf.to_vec();
            self.send_f64s(0, tag, &copy);
            let data = self.recv_f64s(0, tag);
            buf.copy_from_slice(&data);
        }
    }

    /// Recursive doubling with the MPICH non-power-of-two parking
    /// scheme; mirrors [`mpsim`]'s schedule and fold order.
    fn allreduce_rd(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        let pow2 = p.next_power_of_two() / if p.is_power_of_two() { 1 } else { 2 };
        let rem = p - pow2;

        if me >= pow2 {
            let partner = me - pow2;
            let copy = buf.to_vec();
            self.send_f64s(partner, tag, &copy);
            let data = self.recv_f64s(partner, tag);
            buf.copy_from_slice(&data);
            return;
        }
        if me < rem {
            let data = self.recv_f64s(me + pow2, tag);
            op.fold(buf, &data);
        }
        let mut mask = 1usize;
        while mask < pow2 {
            let partner = me ^ mask;
            let copy = buf.to_vec();
            self.send_f64s(partner, tag, &copy);
            let data = self.recv_f64s(partner, tag);
            op.fold(buf, &data);
            mask <<= 1;
        }
        if me < rem {
            let copy = buf.to_vec();
            self.send_f64s(me + pow2, tag, &copy);
        }
    }

    /// Ring allreduce (reduce-scatter + allgather) with the same
    /// balanced chunk partition and fold order as the simulator's.
    fn allreduce_ring(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        let n = buf.len();
        if n == 0 {
            self.barrier();
            return;
        }
        let range = |c: usize| -> std::ops::Range<usize> {
            let base = n / p;
            let extra = n % p;
            let start = c * base + c.min(extra);
            let len = base + usize::from(c < extra);
            start..start + len
        };
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;

        for step in 0..p - 1 {
            let send_c = (me + p - step) % p;
            let recv_c = (me + p - step - 1) % p;
            let chunk = buf[range(send_c)].to_vec();
            self.send_f64s(right, tag, &chunk);
            let data = self.recv_f64s(left, tag);
            op.fold(&mut buf[range(recv_c)], &data);
        }
        for step in 0..p - 1 {
            let send_c = (me + 1 + p - step) % p;
            let recv_c = (me + p - step) % p;
            let chunk = buf[range(send_c)].to_vec();
            self.send_f64s(right, tag, &chunk);
            let data = self.recv_f64s(left, tag);
            buf[range(recv_c)].copy_from_slice(&data);
        }
    }

    /// Rabenseifner's allreduce (recursive-halving reduce-scatter +
    /// recursive-doubling allgather) with the simulator's parking,
    /// chunk partition, and fold order.
    fn allreduce_rabenseifner(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        let pow2 = p.next_power_of_two() / if p.is_power_of_two() { 1 } else { 2 };
        let rem = p - pow2;

        if me >= pow2 {
            let partner = me - pow2;
            let copy = buf.to_vec();
            self.send_f64s(partner, tag, &copy);
            let data = self.recv_f64s(partner, tag);
            buf.copy_from_slice(&data);
            return;
        }
        if me < rem {
            let data = self.recv_f64s(me + pow2, tag);
            op.fold(buf, &data);
        }

        let n = buf.len();
        let range = |c: usize| -> std::ops::Range<usize> {
            let base = n / pow2;
            let extra = n % pow2;
            let start = c * base + c.min(extra);
            start..start + base + usize::from(c < extra)
        };
        let span = |clo: usize, chi: usize| range(clo).start..range(chi - 1).end;

        let (mut clo, mut chi) = (0usize, pow2);
        let mut mask = pow2 >> 1;
        while mask > 0 {
            let partner = me ^ mask;
            let mid = clo + (chi - clo) / 2;
            let (keep, give) =
                if me & mask == 0 { ((clo, mid), (mid, chi)) } else { ((mid, chi), (clo, mid)) };
            let chunk = buf[span(give.0, give.1)].to_vec();
            self.send_f64s(partner, tag, &chunk);
            let data = self.recv_f64s(partner, tag);
            op.fold(&mut buf[span(keep.0, keep.1)], &data);
            (clo, chi) = keep;
            mask >>= 1;
        }

        let mut mask = 1usize;
        while mask < pow2 {
            let partner = me ^ mask;
            let chunk = buf[span(clo, chi)].to_vec();
            self.send_f64s(partner, tag, &chunk);
            let data = self.recv_f64s(partner, tag);
            let plo = clo ^ mask;
            buf[span(plo, plo + mask)].copy_from_slice(&data);
            clo = clo.min(plo);
            chi = clo + 2 * mask;
            mask <<= 1;
        }

        if me < rem {
            let copy = buf.to_vec();
            self.send_f64s(me + pow2, tag, &copy);
        }
    }

    /// Rabenseifner's schedule over an arbitrary ascending member list —
    /// the native mirror of the simulator's `rabenseifner_over`, with the
    /// same parking scheme, chunk partition, and fold order.
    fn rabenseifner_over(&mut self, members: &[usize], buf: &mut [f64], op: ReduceOp, tag: u64) {
        let g = members.len();
        if g <= 1 {
            return;
        }
        let me = members
            .iter()
            .position(|&r| r == self.rank())
            .unwrap_or_else(|| panic!("rank {} is not a member of this group", self.rank()));
        let pow2 = g.next_power_of_two() / if g.is_power_of_two() { 1 } else { 2 };
        let rem = g - pow2;

        if me >= pow2 {
            let partner = members[me - pow2];
            let copy = buf.to_vec();
            self.send_f64s(partner, tag, &copy);
            let data = self.recv_f64s(partner, tag);
            buf.copy_from_slice(&data);
            return;
        }
        if me < rem {
            let data = self.recv_f64s(members[me + pow2], tag);
            op.fold(buf, &data);
        }

        let n = buf.len();
        let range = |c: usize| -> std::ops::Range<usize> {
            let base = n / pow2;
            let extra = n % pow2;
            let start = c * base + c.min(extra);
            start..start + base + usize::from(c < extra)
        };
        let span = |clo: usize, chi: usize| range(clo).start..range(chi - 1).end;

        let (mut clo, mut chi) = (0usize, pow2);
        let mut mask = pow2 >> 1;
        while mask > 0 {
            let partner = members[me ^ mask];
            let mid = clo + (chi - clo) / 2;
            let (keep, give) =
                if me & mask == 0 { ((clo, mid), (mid, chi)) } else { ((mid, chi), (clo, mid)) };
            let chunk = buf[span(give.0, give.1)].to_vec();
            self.send_f64s(partner, tag, &chunk);
            let data = self.recv_f64s(partner, tag);
            op.fold(&mut buf[span(keep.0, keep.1)], &data);
            (clo, chi) = keep;
            mask >>= 1;
        }

        let mut mask = 1usize;
        while mask < pow2 {
            let partner = members[me ^ mask];
            let chunk = buf[span(clo, chi)].to_vec();
            self.send_f64s(partner, tag, &chunk);
            let data = self.recv_f64s(partner, tag);
            let plo = clo ^ mask;
            buf[span(plo, plo + mask)].copy_from_slice(&data);
            clo = clo.min(plo);
            chi = clo + 2 * mask;
            mask <<= 1;
        }

        if me < rem {
            let copy = buf.to_vec();
            self.send_f64s(members[me + pow2], tag, &copy);
        }
    }

    /// Hierarchical allreduce: intra-node ascending fold to the node
    /// leader, Rabenseifner among the leaders, intra-node broadcast —
    /// exactly the simulator's schedule, so results are bitwise identical
    /// across backends.
    fn allreduce_hierarchical(&mut self, buf: &mut [f64], op: ReduceOp, tag: u64) {
        let p = self.size();
        let me = self.rank();
        let ns = self.machine().topology.node_size().clamp(1, p);
        let node = me / ns;
        let leader = node * ns;
        let node_end = ((node + 1) * ns).min(p);

        if me == leader {
            for src in leader + 1..node_end {
                let data = self.recv_f64s(src, tag);
                if data.len() != buf.len() {
                    self.mismatch(format!(
                        "allreduce length {} != rank {src}'s {}",
                        buf.len(),
                        data.len()
                    ));
                }
                op.fold(buf, &data);
            }
            let leaders: Vec<usize> = (0..p).step_by(ns).collect();
            self.rabenseifner_over(&leaders, buf, op, tag);
            for dst in leader + 1..node_end {
                let copy = buf.to_vec();
                self.send_f64s(dst, tag, &copy);
            }
        } else {
            let copy = buf.to_vec();
            self.send_f64s(leader, tag, &copy);
            let data = self.recv_f64s(leader, tag);
            buf.copy_from_slice(&data);
        }
    }

    /// Gather each rank's (possibly differently sized) vector to `root`,
    /// concatenated in rank order. `Some` on the root.
    pub fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>> {
        let p = self.size();
        let me = self.rank();
        let tag = self.coll_enter();
        if me == root {
            let mut all = Vec::with_capacity(mine.len() * p);
            for src in 0..p {
                if src == me {
                    all.extend_from_slice(mine);
                } else {
                    let data = self.recv_f64s(src, tag);
                    all.extend_from_slice(&data);
                }
            }
            Some(all)
        } else {
            self.send_f64s(root, tag, mine);
            None
        }
    }

    /// Allgather over a ring: `result[r]` is rank `r`'s contribution.
    pub fn allgather_f64s(&mut self, mine: &[f64]) -> Vec<Vec<f64>> {
        let p = self.size();
        let me = self.rank();
        let tag = self.coll_enter();
        let mut blocks: Vec<Vec<f64>> = vec![Vec::new(); p];
        blocks[me] = mine.to_vec();
        if p == 1 {
            return blocks;
        }
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let mut cur = mine.to_vec();
        for step in 0..p - 1 {
            self.send_f64s(right, tag, &cur);
            cur = self.recv_f64s(left, tag);
            blocks[(me + p - step - 1) % p] = cur.clone();
        }
        blocks
    }
}
