//! Native sub-communicators: the `MPI_Comm_split` analogue on the
//! shared-memory backend, mirroring [`mpsim::SubComm`]'s schedules (and
//! tag-space split) exactly so group collectives are bitwise identical
//! across backends.

use mpsim::ReduceOp;

use crate::comm::NativeComm;

/// Tag-space marker for sub-communicator traffic (bit 63; same split as
/// the simulator's).
const SUB_TAG_BASE: u64 = 1 << 63;

/// Marker bit for nested-group color keys (same as the simulator's).
const NESTED_COLOR_BIT: u32 = 1 << 30;

/// The color key a nested group stamps into its tag space — identical to
/// `mpsim::subcomm::nested_color_key`, so nested-group tags and registry
/// ids are bitwise aligned across backends. Colors below 2^15, two
/// levels of nesting.
fn nested_color_key(parent: u32, child: u32) -> u32 {
    NESTED_COLOR_BIT | ((parent & 0x7FFF) << 15) | (child & 0x7FFF)
}

/// A communicator over a subset of the native world's ranks.
pub struct NativeSubComm<'a> {
    world: &'a mut NativeComm,
    /// World ranks of the members, ascending; index = sub rank.
    members: Vec<usize>,
    /// This rank's position within `members`.
    rank: usize,
    /// Color the group was formed with (part of the tag space).
    color: u32,
    /// Per-group collective sequence number.
    seq: u64,
    /// Registry id distinguishing this group in the replication checker.
    comm_id: u64,
}

impl NativeComm {
    /// Split the world communicator by color: ranks passing equal colors
    /// form a group. Collective over the world communicator.
    pub fn split(&mut self, color: u32) -> NativeSubComm<'_> {
        let mine = [color as f64];
        let all = self.allgather_f64s(&mine);
        let members: Vec<usize> =
            all.iter().enumerate().filter(|(_, c)| c[0] as u32 == color).map(|(r, _)| r).collect();
        let me = self.rank();
        let rank = members
            .iter()
            .position(|&r| r == me)
            // lint:allow(unwrap): the allgather included this rank's own color
            .expect("calling rank is in its own color group");
        let comm_id = SUB_TAG_BASE | (u64::from(color) << 32) | self.coll_seq;
        NativeSubComm { world: self, members, rank, color, seq: 0, comm_id }
    }
}

impl NativeSubComm<'_> {
    /// This rank's id within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World ranks of the group, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Access the underlying world communicator.
    pub fn world(&mut self) -> &mut NativeComm {
        self.world
    }

    /// Timing no-op, like [`NativeComm::work`].
    pub fn work(&mut self, ops: u64) {
        self.world.work(ops);
    }

    /// Allreduce of a single scalar over the group.
    pub fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> f64 {
        let mut buf = [value];
        self.allreduce_f64s(&mut buf, op);
        buf[0]
    }

    fn next_tag(&mut self) -> u64 {
        self.seq += 1;
        SUB_TAG_BASE | (u64::from(self.color) << 32) | self.seq
    }

    fn check_replicated_result(&mut self, label: &str, buf: &[f64]) {
        let (comm_id, seq, group) = (self.comm_id, self.seq, self.members.len());
        self.world.check_replicated_in(comm_id, seq, group, label, buf);
    }

    fn send(&mut self, sub_dst: usize, tag: u64, values: &[f64]) {
        let dst = self.members[sub_dst];
        self.world.send_f64s(dst, tag, values);
    }

    fn recv(&mut self, sub_src: usize, tag: u64) -> Vec<f64> {
        let src = self.members[sub_src];
        self.world.recv_f64s(src, tag)
    }

    /// Synchronize the group (dissemination barrier over group ranks).
    pub fn barrier(&mut self) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.next_tag();
        let me = self.rank;
        let mut k = 1usize;
        while k < p {
            self.send((me + k) % p, tag, &[]);
            let _ = self.recv((me + p - k) % p, tag);
            k <<= 1;
        }
    }

    /// Broadcast from the group-rank `root` to the group (binomial tree,
    /// same shape as the simulator's group broadcast).
    pub fn broadcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.next_tag();
        let me = self.rank;
        let vrank = (me + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let src = (me + p - mask) % p;
                let data = self.recv(src, tag);
                buf.copy_from_slice(&data);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let dst = (me + mask) % p;
                let copy = buf.to_vec();
                self.send(dst, tag, &copy);
            }
            mask >>= 1;
        }
        self.check_replicated_result("group broadcast result", buf);
    }

    /// Allreduce over the group (recursive doubling with the standard
    /// non-power-of-two parking, same fold order as the simulator's).
    pub fn allreduce_f64s(&mut self, buf: &mut [f64], op: ReduceOp) {
        let p = self.size();
        if p <= 1 {
            return;
        }
        let tag = self.next_tag();
        let me = self.rank;
        let pow2 = if p.is_power_of_two() { p } else { p.next_power_of_two() / 2 };
        let rem = p - pow2;

        if me >= pow2 {
            let partner = me - pow2;
            let copy = buf.to_vec();
            self.send(partner, tag, &copy);
            let data = self.recv(partner, tag);
            buf.copy_from_slice(&data);
            self.check_replicated_result("group allreduce result", buf);
            return;
        }
        if me < rem {
            let data = self.recv(me + pow2, tag);
            op.fold(buf, &data);
        }
        let mut mask = 1usize;
        while mask < pow2 {
            let partner = me ^ mask;
            let copy = buf.to_vec();
            self.send(partner, tag, &copy);
            let data = self.recv(partner, tag);
            op.fold(buf, &data);
            mask <<= 1;
        }
        if me < rem {
            let copy = buf.to_vec();
            self.send(me + pow2, tag, &copy);
        }
        self.check_replicated_result("group allreduce result", buf);
    }

    /// Gather variable-length vectors to the group-rank `root`,
    /// concatenated in group-rank order. `Some` on the root.
    pub fn gather_f64s(&mut self, root: usize, mine: &[f64]) -> Option<Vec<f64>> {
        let p = self.size();
        let tag = self.next_tag();
        if self.rank == root {
            let mut all = Vec::with_capacity(mine.len() * p);
            for src in 0..p {
                if src == self.rank {
                    all.extend_from_slice(mine);
                } else {
                    let data = self.recv(src, tag);
                    all.extend_from_slice(&data);
                }
            }
            Some(all)
        } else {
            self.send(root, tag, mine);
            None
        }
    }

    /// Split this group by color: the nested `MPI_Comm_split` analogue,
    /// mirroring `mpsim::SubComm::split`'s gather + broadcast membership
    /// exchange and color-key scheme exactly, so nested-group collectives
    /// are bitwise identical across backends. Collective over this group.
    pub fn split(&mut self, color: u32) -> NativeSubComm<'_> {
        let p = self.size();
        let mut all = vec![0.0; p];
        if let Some(gathered) = self.gather_f64s(0, &[f64::from(color)]) {
            all.copy_from_slice(&gathered);
        }
        self.broadcast_f64s(0, &mut all);
        let members_sub: Vec<usize> =
            all.iter().enumerate().filter(|(_, c)| **c as u32 == color).map(|(r, _)| r).collect();
        let rank = members_sub
            .iter()
            .position(|&r| r == self.rank)
            // lint:allow(unwrap): the gather included this rank's own color
            .expect("calling rank is in its own color group");
        let members: Vec<usize> = members_sub.iter().map(|&r| self.members[r]).collect();
        let key = nested_color_key(self.color, color);
        let comm_id = SUB_TAG_BASE | (u64::from(key) << 32) | self.seq;
        NativeSubComm { world: &mut *self.world, members, rank, color: key, seq: 0, comm_id }
    }
}
