//! The tentpole guarantee: after warmup, `base_cycle` performs **zero**
//! heap allocations. A counting `#[global_allocator]` wraps the system
//! allocator; we warm the workspace up with a few cycles, snapshot the
//! allocation counter, run more cycles, and require the counter unchanged.
//!
//! Scope: scalar (normal/log-normal) and multinomial families — the
//! paper's actual workload. Correlated-Gaussian models are the documented
//! exception (their NIW M-step builds a fresh Cholesky factor; see
//! DESIGN.md).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use autoclass::data::dataset::{Dataset, Value};
use autoclass::data::schema::{Attribute, Schema};
use autoclass::data::stats::GlobalStats;
use autoclass::model::{init_classes, CycleWorkspace, Model};
use autoclass::search::{base_cycle, PhaseProfile};

/// Counts every allocator call that can hand out memory. `dealloc` is
/// deliberately not counted: freeing is allowed (nothing should be freed
/// either, but the invariant we sell is "no allocation").
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Deterministic mixed real + discrete dataset (no datagen dependency:
/// this crate's dev-deps stay minimal, and determinism is free).
fn mixed_dataset(n: usize) -> Dataset {
    let schema = Schema::new(vec![
        Attribute::real("x", 0.01),
        Attribute::real("y", 0.01),
        Attribute::discrete("c", 3),
    ]);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            let side = if i % 2 == 0 { -4.0 } else { 4.0 };
            let jitter = (i as f64 * 0.61).sin();
            vec![
                Value::Real(side + jitter),
                Value::Real(-side + 0.5 * jitter),
                Value::Discrete((i % 3) as u32),
            ]
        })
        .collect();
    Dataset::from_rows(schema, &rows)
}

#[test]
fn base_cycle_is_allocation_free_after_warmup() {
    let data = mixed_dataset(400);
    let view = data.full_view();
    let stats = GlobalStats::compute(&view);
    let model = Model::new(data.schema().clone(), &stats);
    let mut classes = init_classes(&model, &view, 3, 42);

    let mut ws = CycleWorkspace::new();
    let mut profile = PhaseProfile::default();

    // Warmup: buffers grow to their high-water mark (and any lazy
    // one-time allocation elsewhere — e.g. stdio, TLS — gets triggered).
    for _ in 0..3 {
        base_cycle(&model, &view, &mut classes, &mut ws, &mut profile);
    }
    let j_after_warmup = classes.len();

    let before = ALLOC_CALLS.load(Relaxed);
    for _ in 0..5 {
        base_cycle(&model, &view, &mut classes, &mut ws, &mut profile);
    }
    let after = ALLOC_CALLS.load(Relaxed);

    assert_eq!(
        after - before,
        0,
        "base_cycle allocated {} time(s) in 5 post-warmup cycles",
        after - before
    );
    // Sanity: the cycles did real work on an unchanged class structure.
    assert_eq!(classes.len(), j_after_warmup, "class death mid-test would mask the check");
    assert!(profile.cycles == 8, "expected 8 profiled cycles, got {}", profile.cycles);
}
