//! The AutoClass search: `base_cycle`, classification tries, and the
//! `BIG_LOOP` over the number of classes.
//!
//! Structure mirrors the sequential AutoClass C program the paper
//! parallelizes (its Figures 1–3):
//!
//! ```text
//! BIG_LOOP {
//!   select the number of classes (from start_j_list)
//!   new classification try:            // the hot part
//!     repeat base_cycle {
//!       update_wts                      // E-step
//!       update_parameters               // M-step
//!       update_approximations           // scoring + convergence
//!     } until converged or max_cycles
//!   duplicates elimination
//!   select the best classification
//! }
//! ```

use std::time::Instant;

use crate::data::dataset::DataView;
use crate::data::stats::GlobalStats;
use crate::model::{
    converged, evaluate, init_classes, log_param_prior, stats_to_classes_into, update_wts_into,
    Approximation, ClassParams, CycleWorkspace, Model,
};

/// Search configuration. Defaults reproduce the paper's experimental setup
/// where it is specified (`start_j_list = 2,4,8,16,24,50,64`).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Numbers of classes to try (the paper's `start_j_list`).
    pub start_j_list: Vec<usize>,
    /// Random restarts per entry of `start_j_list`.
    pub tries_per_j: usize,
    /// Hard cap on EM cycles per try.
    pub max_cycles: usize,
    /// Relative log-likelihood change below which a try has converged.
    pub rel_delta_ll: f64,
    /// Classes whose expected count falls below this are removed
    /// ("class death"), shrinking J during a try.
    pub min_class_weight: f64,
    /// Base random seed; every try derives its own stream from it.
    pub seed: u64,
    /// How many best classifications to keep in the result.
    pub max_stored: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            start_j_list: vec![2, 4, 8, 16, 24, 50, 64],
            tries_per_j: 2,
            max_cycles: 200,
            rel_delta_ll: 1e-6,
            min_class_weight: 1.0,
            seed: 0xAC1A55,
            max_stored: 10,
        }
    }
}

impl SearchConfig {
    /// A small configuration for tests and examples: few classes, few
    /// tries, loose convergence.
    pub fn quick(start_j_list: Vec<usize>, seed: u64) -> Self {
        SearchConfig {
            start_j_list,
            tries_per_j: 1,
            max_cycles: 50,
            rel_delta_ll: 1e-5,
            seed,
            ..SearchConfig::default()
        }
    }
}

/// A finished classification (one try's result).
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Final MAP class parameters, sorted by decreasing weight.
    pub classes: Vec<ClassParams>,
    /// The J the try started with.
    pub j_initial: usize,
    /// Scores at the final cycle.
    pub approx: Approximation,
    /// Log prior density of the final parameters (reporting).
    pub log_prior: f64,
    /// EM cycles run.
    pub cycles: usize,
    /// Whether the convergence criterion fired (vs hitting `max_cycles`).
    pub converged: bool,
    /// The seed this try ran with.
    pub seed: u64,
}

impl Classification {
    /// Effective number of classes after class death.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The ranking score (Cheeseman–Stutz marginal estimate).
    pub fn score(&self) -> f64 {
        self.approx.cs_score
    }
}

/// Wall-clock seconds spent per phase — the measurement behind the paper's
/// claim that `base_cycle` is ~99.5 % of runtime with `update_wts` and
/// `update_parameters` dominating.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseProfile {
    /// Initialization (structure setup + random class seeding).
    pub init: f64,
    /// `update_wts` total.
    pub wts: f64,
    /// `update_parameters` total.
    pub params: f64,
    /// `update_approximations` total.
    pub approx: f64,
    /// Everything else in the search loop.
    pub other: f64,
    /// Total EM cycles across all tries.
    pub cycles: usize,
}

impl PhaseProfile {
    /// Total profiled time.
    pub fn total(&self) -> f64 {
        self.init + self.wts + self.params + self.approx + self.other
    }

    /// Fraction of time in `base_cycle` (wts+params+approx).
    pub fn base_cycle_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            (self.wts + self.params + self.approx) / t
        } else {
            0.0
        }
    }
}

/// Result of a whole search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best classification by CS score.
    pub best: Classification,
    /// All retained classifications, best first, duplicates removed.
    pub all: Vec<Classification>,
    /// Phase timing.
    pub profile: PhaseProfile,
}

/// One EM cycle (`base_cycle`): E-step, M-step, scoring. Updates `classes`
/// in place and returns the cycle's scores. Shared verbatim by the parallel
/// driver, which inserts Allreduces between the same phases.
///
/// Every buffer the cycle needs lives in `ws`: after the first cycle at a
/// given model shape, a call performs no heap allocation (asserted by the
/// counting-allocator test in `tests/alloc_free.rs`; correlated-Gaussian
/// models are the documented exception — their NIW M-step rebuilds a
/// Cholesky factor).
pub fn base_cycle(
    model: &Model,
    view: &DataView<'_>,
    classes: &mut Vec<ClassParams>,
    ws: &mut CycleWorkspace,
    profile: &mut PhaseProfile,
) -> Approximation {
    ws.reset_stats(model, classes.len());
    let CycleWorkspace { wts, estep, stats, .. } = ws;
    let Some(stats) = stats else { unreachable!("reset_stats installs the statistics buffer") };

    let t0 = Instant::now();
    let e = update_wts_into(model, view, classes, wts, estep);
    let t1 = Instant::now();
    profile.wts += (t1 - t0).as_secs_f64();

    stats.accumulate(model, view, wts);
    stats_to_classes_into(model, stats, classes);
    let t2 = Instant::now();
    profile.params += (t2 - t1).as_secs_f64();

    let approx = evaluate(model, stats, e.log_likelihood, e.complete_ll);
    profile.approx += t2.elapsed().as_secs_f64();
    profile.cycles += 1;

    approx
}

/// Remove classes whose expected count dropped below the threshold.
/// Returns true when anything was removed. Never removes the last class.
pub fn apply_class_death(classes: &mut Vec<ClassParams>, min_weight: f64) -> bool {
    if classes.len() <= 1 {
        return false;
    }
    let before = classes.len();
    // Keep the heaviest class unconditionally so J ≥ 1.
    let max_w = classes.iter().map(|c| c.weight).fold(f64::NEG_INFINITY, f64::max);
    classes.retain(|c| c.weight >= min_weight || c.weight == max_w);
    if classes.is_empty() {
        unreachable!("the heaviest class is always retained");
    }
    classes.len() != before
}

/// Run one classification try: initialize J classes, cycle to convergence.
/// The caller-provided workspace is reused across tries (and across the
/// whole `BIG_LOOP`), so steady-state cycles are allocation-free.
pub fn try_classification(
    model: &Model,
    view: &DataView<'_>,
    j: usize,
    config: &SearchConfig,
    seed: u64,
    ws: &mut CycleWorkspace,
    profile: &mut PhaseProfile,
) -> Classification {
    let t0 = Instant::now();
    let mut classes = init_classes(model, view, j, seed);
    profile.init += t0.elapsed().as_secs_f64();

    let mut prev_ll = f64::NEG_INFINITY;
    let mut cycles = 0;
    let mut did_converge = false;
    let mut approx = Approximation {
        log_likelihood: f64::NEG_INFINITY,
        complete_ll: f64::NEG_INFINITY,
        complete_marginal: f64::NEG_INFINITY,
        cs_score: f64::NEG_INFINITY,
    };
    while cycles < config.max_cycles {
        let a = base_cycle(model, view, &mut classes, ws, profile);
        approx = a;
        cycles += 1;
        // Class death restarts the convergence watch: the likelihood
        // landscape changed.
        if apply_class_death(&mut classes, config.min_class_weight) {
            prev_ll = f64::NEG_INFINITY;
            continue;
        }
        if converged(prev_ll, a.log_likelihood, config.rel_delta_ll) {
            did_converge = true;
            break;
        }
        prev_ll = a.log_likelihood;
    }

    let t3 = Instant::now();
    classes.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    let log_prior = log_param_prior(model, &classes);
    profile.other += t3.elapsed().as_secs_f64();

    Classification {
        classes,
        j_initial: j,
        approx,
        log_prior,
        cycles,
        converged: did_converge,
        seed,
    }
}

/// Are two classifications duplicates? AutoClass removes re-discoveries of
/// the same solution from different starts. We call two results duplicates
/// when they have the same effective J, nearly equal scores, and nearly
/// equal sorted class-weight vectors.
pub fn is_duplicate(a: &Classification, b: &Classification) -> bool {
    if a.n_classes() != b.n_classes() {
        return false;
    }
    let score_close = (a.score() - b.score()).abs() <= 1e-4 * a.score().abs().max(1.0);
    if !score_close {
        return false;
    }
    // Classes are sorted by weight already.
    let n = a.classes.iter().map(|c| c.weight).sum::<f64>().max(1.0);
    a.classes.iter().zip(&b.classes).all(|(x, y)| (x.weight - y.weight).abs() <= 0.01 * n)
}

/// The full search (`BIG_LOOP`): every J in `start_j_list`, several tries
/// each, duplicate elimination, best-first ranking.
pub fn search(view: &DataView<'_>, config: &SearchConfig) -> SearchResult {
    let stats = GlobalStats::compute(view);
    let model = Model::new(view.schema().clone(), &stats);
    search_with_model(view, &model, config)
}

/// [`search`] against an explicit model structure (e.g. one built with
/// [`Model::with_correlated`]).
pub fn search_with_model(
    view: &DataView<'_>,
    model: &Model,
    config: &SearchConfig,
) -> SearchResult {
    let t0 = Instant::now();
    let model = model.clone();
    let mut profile = PhaseProfile::default();
    profile.init += t0.elapsed().as_secs_f64();

    // One workspace for the whole BIG_LOOP: the weight matrix, scratch
    // buffers, and statistics grow to their high-water mark on the first
    // try and are reused by every subsequent cycle.
    let mut ws = CycleWorkspace::new();
    let mut all: Vec<Classification> = Vec::new();
    for (ji, &j) in config.start_j_list.iter().enumerate() {
        for t in 0..config.tries_per_j {
            let seed = crate::model::derive_seed(config.seed, (ji * config.tries_per_j + t) as u64);
            let c = try_classification(&model, view, j, config, seed, &mut ws, &mut profile);
            let tx = Instant::now();
            if !all.iter().any(|existing| is_duplicate(existing, &c)) {
                all.push(c);
            }
            profile.other += tx.elapsed().as_secs_f64();
        }
    }
    let tx = Instant::now();
    all.sort_by(|a, b| b.score().total_cmp(&a.score()));
    all.truncate(config.max_stored);
    profile.other += tx.elapsed().as_secs_f64();

    // lint:allow(unwrap): the config validation guarantees at least one try
    let best = all.first().expect("at least one try ran").clone();
    SearchResult { best, all, profile }
}

/// AutoClass's *model-level* search: given candidate attribute structures
/// (each a list of correlated blocks; the empty list is the default
/// all-independent structure), run the parameter-level search under each
/// and rank the structures by their best Cheeseman–Stutz score. Returns
/// `(block list, result)` pairs, best structure first.
///
/// This is the second of the paper's two search levels ("regardless of
/// any V, AutoClass searches for the most probable T").
pub fn compare_structures(
    view: &DataView<'_>,
    candidates: &[Vec<Vec<usize>>],
    config: &SearchConfig,
) -> Vec<(Vec<Vec<usize>>, SearchResult)> {
    assert!(!candidates.is_empty(), "need at least one candidate structure");
    let stats = GlobalStats::compute(view);
    let mut out: Vec<(Vec<Vec<usize>>, SearchResult)> = candidates
        .iter()
        .map(|blocks| {
            let model = if blocks.is_empty() {
                Model::new(view.schema().clone(), &stats)
            } else {
                Model::with_correlated(view.schema().clone(), &stats, blocks)
            };
            (blocks.clone(), search_with_model(view, &model, config))
        })
        .collect();
    out.sort_by(|a, b| b.1.best.score().total_cmp(&a.1.best.score()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::Schema;

    /// Three well-separated 2-D Gaussian blobs, deterministic.
    fn blobs(n_per: usize) -> Dataset {
        let schema = Schema::reals(2, 0.05);
        let centers = [(-8.0, -8.0), (0.0, 8.0), (8.0, -4.0)];
        let mut rows = Vec::new();
        for i in 0..n_per {
            for (cx, cy) in centers {
                let a = (i as f64 * 0.7).sin();
                let b = (i as f64 * 1.3).cos();
                rows.push(vec![Value::Real(cx + a), Value::Real(cy + b)]);
            }
        }
        Dataset::from_rows(schema, &rows)
    }

    #[test]
    fn search_recovers_planted_cluster_count() {
        let data = blobs(60);
        let config = SearchConfig {
            start_j_list: vec![1, 2, 3, 4, 6],
            tries_per_j: 2,
            max_cycles: 60,
            ..SearchConfig::default()
        };
        let result = search(&data.full_view(), &config);
        assert_eq!(
            result.best.n_classes(),
            3,
            "expected 3 classes, scores: {:?}",
            result.all.iter().map(|c| (c.n_classes(), c.score())).collect::<Vec<_>>()
        );
        assert!(result.best.converged);
    }

    #[test]
    fn tries_are_reproducible() {
        let data = blobs(20);
        let config = SearchConfig::quick(vec![3], 99);
        let a = search(&data.full_view(), &config);
        let b = search(&data.full_view(), &config);
        assert_eq!(a.best.classes, b.best.classes);
        assert_eq!(a.best.approx, b.best.approx);
    }

    #[test]
    fn class_death_removes_empty_classes() {
        let data = blobs(40);
        // Ask for far more classes than the data supports.
        let config = SearchConfig {
            start_j_list: vec![10],
            tries_per_j: 3,
            max_cycles: 80,
            ..SearchConfig::default()
        };
        let result = search(&data.full_view(), &config);
        assert!(
            result.best.n_classes() < 10,
            "class death should prune, got {}",
            result.best.n_classes()
        );
    }

    #[test]
    fn apply_class_death_keeps_heaviest() {
        let mk = |w: f64| ClassParams::new(w, 0.5, vec![]);
        let mut classes = vec![mk(0.1), mk(0.2)];
        // Both below threshold: the heaviest must survive.
        let removed = apply_class_death(&mut classes, 1.0);
        assert!(removed);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].weight, 0.2);
    }

    #[test]
    fn profile_accounts_for_base_cycle_dominance() {
        let data = blobs(80);
        let config = SearchConfig::quick(vec![3, 5], 7);
        let result = search(&data.full_view(), &config);
        // The paper measured ~99.5 %; on tiny data the constant parts are
        // relatively bigger, so just require clear dominance.
        assert!(
            result.profile.base_cycle_fraction() > 0.5,
            "fraction = {}",
            result.profile.base_cycle_fraction()
        );
        assert!(result.profile.cycles > 0);
    }

    #[test]
    fn classifications_sorted_by_score() {
        let data = blobs(30);
        let config = SearchConfig {
            start_j_list: vec![1, 3],
            tries_per_j: 2,
            ..SearchConfig::quick(vec![], 3)
        };
        let result = search(&data.full_view(), &config);
        for w in result.all.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
        assert_eq!(result.best.score(), result.all[0].score());
    }

    #[test]
    fn duplicate_detection() {
        let data = blobs(30);
        let config = SearchConfig::quick(vec![3], 5);
        let result = search(&data.full_view(), &config);
        let c = &result.best;
        assert!(is_duplicate(c, c));
        let mut other = c.clone();
        other.approx.cs_score += 100.0;
        assert!(!is_duplicate(c, &other));
    }
}
