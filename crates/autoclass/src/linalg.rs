//! Small dense symmetric linear algebra for the correlated-normal model
//! term: Cholesky factorization, triangular solves, log-determinants, and
//! inverses. Matrices are row-major `Vec<f64>` of size `d × d`; the
//! dimensions involved are tiny (an attribute block), so simplicity and
//! numerical transparency beat asymptotics.

/// Row-major index into a `d × d` matrix.
#[inline]
pub fn idx(d: usize, i: usize, j: usize) -> usize {
    i * d + j
}

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular `L` (row-major, upper part zeroed) with
/// `L Lᵀ = A`. Returns `None` if the matrix is not positive definite.
pub fn cholesky(a: &[f64], d: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), d * d, "matrix must be d×d");
    let mut l = vec![0.0; d * d];
    for i in 0..d {
        for j in 0..=i {
            let mut sum = a[idx(d, i, j)];
            for k in 0..j {
                sum -= l[idx(d, i, k)] * l[idx(d, j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[idx(d, i, j)] = sum.sqrt();
            } else {
                l[idx(d, i, j)] = sum / l[idx(d, j, j)];
            }
        }
    }
    Some(l)
}

/// Solve `L y = b` for lower-triangular `L` (forward substitution),
/// writing into `y`.
pub fn forward_solve(l: &[f64], d: usize, b: &[f64], y: &mut [f64]) {
    debug_assert_eq!(b.len(), d);
    debug_assert_eq!(y.len(), d);
    for i in 0..d {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[idx(d, i, k)] * y[k];
        }
        y[i] = sum / l[idx(d, i, i)];
    }
}

/// Solve `Lᵀ x = y` for lower-triangular `L` (back substitution), in place.
pub fn backward_solve(l: &[f64], d: usize, x: &mut [f64]) {
    for i in (0..d).rev() {
        let mut sum = x[i];
        for k in i + 1..d {
            sum -= l[idx(d, k, i)] * x[k];
        }
        x[i] = sum / l[idx(d, i, i)];
    }
}

/// `ln det A` from its Cholesky factor: `2 Σ ln L_ii`.
pub fn log_det_from_chol(l: &[f64], d: usize) -> f64 {
    (0..d).map(|i| l[idx(d, i, i)].ln()).sum::<f64>() * 2.0
}

/// Inverse of a symmetric positive-definite matrix via its Cholesky
/// factor (solve for each unit vector). Returns a full symmetric matrix.
pub fn inverse_from_chol(l: &[f64], d: usize) -> Vec<f64> {
    let mut inv = vec![0.0; d * d];
    let mut col = vec![0.0; d];
    let mut e = vec![0.0; d];
    for j in 0..d {
        e.iter_mut().for_each(|v| *v = 0.0);
        e[j] = 1.0;
        forward_solve(l, d, &e, &mut col);
        backward_solve(l, d, &mut col);
        for i in 0..d {
            inv[idx(d, i, j)] = col[i];
        }
    }
    // Symmetrize against round-off.
    for i in 0..d {
        for j in 0..i {
            let m = 0.5 * (inv[idx(d, i, j)] + inv[idx(d, j, i)]);
            inv[idx(d, i, j)] = m;
            inv[idx(d, j, i)] = m;
        }
    }
    inv
}

/// Squared Mahalanobis norm `‖L⁻¹ v‖²` given the Cholesky factor of the
/// covariance (so the quadratic form `vᵀ Σ⁻¹ v`). `scratch` must be `d`
/// long; using caller scratch keeps the hot loop allocation-free.
pub fn mahalanobis_sq(l: &[f64], d: usize, v: &[f64], scratch: &mut [f64]) -> f64 {
    forward_solve(l, d, v, scratch);
    scratch.iter().map(|y| y * y).sum()
}

/// `tr(A · B)` for symmetric dense matrices.
pub fn trace_product(a: &[f64], b: &[f64], d: usize) -> f64 {
    let mut t = 0.0;
    for i in 0..d {
        for j in 0..d {
            t += a[idx(d, i, j)] * b[idx(d, j, i)];
        }
    }
    t
}

/// Multivariate log-gamma `ln Γ_d(a)`.
pub fn ln_multigamma(d: usize, a: f64) -> f64 {
    let mut out = 0.25 * (d * (d - 1)) as f64 * std::f64::consts::PI.ln();
    for i in 0..d {
        out += crate::math::ln_gamma(a - 0.5 * i as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    fn spd2() -> Vec<f64> {
        // [[4, 2], [2, 3]]
        vec![4.0, 2.0, 2.0, 3.0]
    }

    #[test]
    fn cholesky_of_known_matrix() {
        let l = cholesky(&spd2(), 2).unwrap();
        // L = [[2, 0], [1, sqrt(2)]]
        assert!((l[0] - 2.0).abs() < TOL);
        assert!((l[1]).abs() < TOL);
        assert!((l[2] - 1.0).abs() < TOL);
        assert!((l[3] - 2.0f64.sqrt()).abs() < TOL);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky(&a, 2).is_none());
        let z = vec![0.0; 4];
        assert!(cholesky(&z, 2).is_none());
    }

    #[test]
    fn solves_recover_rhs() {
        let a = spd2();
        let l = cholesky(&a, 2).unwrap();
        let b = [1.0, -2.0];
        let mut y = [0.0; 2];
        forward_solve(&l, 2, &b, &mut y);
        backward_solve(&l, 2, &mut y);
        // Check A x = b.
        let ax0 = a[0] * y[0] + a[1] * y[1];
        let ax1 = a[2] * y[0] + a[3] * y[1];
        assert!((ax0 - b[0]).abs() < TOL, "{ax0}");
        assert!((ax1 - b[1]).abs() < TOL, "{ax1}");
    }

    #[test]
    fn log_det_matches_direct() {
        let a = spd2();
        let l = cholesky(&a, 2).unwrap();
        // det = 4*3 - 2*2 = 8
        assert!((log_det_from_chol(&l, 2) - 8.0f64.ln()).abs() < TOL);
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd2();
        let l = cholesky(&a, 2).unwrap();
        let inv = inverse_from_chol(&l, 2);
        // A · A⁻¹ = I
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += a[idx(2, i, k)] * inv[idx(2, k, j)];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < TOL, "({i},{j}): {s}");
            }
        }
    }

    #[test]
    fn mahalanobis_matches_quadratic_form() {
        let a = spd2();
        let l = cholesky(&a, 2).unwrap();
        let inv = inverse_from_chol(&l, 2);
        let v = [1.5, -0.5];
        let mut scratch = [0.0; 2];
        let m = mahalanobis_sq(&l, 2, &v, &mut scratch);
        let mut q = 0.0;
        for i in 0..2 {
            for j in 0..2 {
                q += v[i] * inv[idx(2, i, j)] * v[j];
            }
        }
        assert!((m - q).abs() < TOL, "{m} vs {q}");
    }

    #[test]
    fn trace_product_identity() {
        let a = spd2();
        let i2 = vec![1.0, 0.0, 0.0, 1.0];
        assert!((trace_product(&a, &i2, 2) - 7.0).abs() < TOL); // tr(A) = 4+3
    }

    #[test]
    fn multigamma_reduces_to_gamma_for_d1() {
        for a in [0.5, 1.0, 2.5, 10.0] {
            assert!((ln_multigamma(1, a) - crate::math::ln_gamma(a)).abs() < 1e-12);
        }
        // Known recurrence: Γ_2(a) = π^{1/2} Γ(a) Γ(a − 1/2).
        let a = 3.0;
        let expect = 0.5 * std::f64::consts::PI.ln()
            + crate::math::ln_gamma(a)
            + crate::math::ln_gamma(a - 0.5);
        assert!((ln_multigamma(2, a) - expect).abs() < 1e-12);
    }

    #[test]
    fn larger_random_spd_round_trip() {
        // Build SPD as MᵀM + I for a fixed pseudo-random M.
        let d = 5;
        let mut m = vec![0.0; d * d];
        for (i, v) in m.iter_mut().enumerate() {
            *v = ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0;
        }
        let mut a = vec![0.0; d * d];
        for i in 0..d {
            for j in 0..d {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..d {
                    s += m[idx(d, k, i)] * m[idx(d, k, j)];
                }
                a[idx(d, i, j)] = s;
            }
        }
        let l = cholesky(&a, d).expect("SPD by construction");
        // Verify L Lᵀ = A.
        for i in 0..d {
            for j in 0..d {
                let mut s = 0.0;
                for k in 0..d {
                    s += l[idx(d, i, k)] * l[idx(d, j, k)];
                }
                assert!((s - a[idx(d, i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }
}
