//! # autoclass — Bayesian unsupervised classification, in Rust
//!
//! A from-scratch reimplementation of **AutoClass** (Cheeseman & Stutz,
//! NASA Ames): finite-mixture-model clustering where class membership is
//! probabilistic, parameters are MAP estimates under conjugate priors
//! derived from the data, and alternative classifications (different
//! numbers of classes) are ranked by an approximation to the marginal
//! likelihood (the Cheeseman–Stutz estimate).
//!
//! This crate is the *sequential* system; the `pautoclass` crate layers
//! the paper's SPMD parallelization on top of the same kernels.
//!
//! ## Quick start
//!
//! ```
//! use autoclass::data::{Dataset, Schema, Value};
//! use autoclass::search::{search, SearchConfig};
//!
//! // Two obvious 1-D clusters.
//! let schema = Schema::reals(1, 0.05);
//! let rows: Vec<Vec<Value>> = (0..60)
//!     .map(|i| {
//!         let c = if i % 2 == 0 { -5.0 } else { 5.0 };
//!         vec![Value::Real(c + (i as f64 * 0.61).sin())]
//!     })
//!     .collect();
//! let data = Dataset::from_rows(schema, &rows);
//!
//! let result = search(&data.full_view(), &SearchConfig::quick(vec![1, 2, 3], 41));
//! assert_eq!(result.best.n_classes(), 2);
//! ```
//!
//! ## Structure
//! * [`data`] — schemas, column-major datasets, views, global stats, CSV
//! * [`model`] — term priors/parameters, E-step, M-step, sufficient
//!   statistics, Cheeseman–Stutz scoring, initialization
//! * [`mod@search`] — `base_cycle`, tries, and the `BIG_LOOP`
//! * [`report`] — influence-value reports
//! * [`predict`] — posterior membership for new items
//! * [`math`] — log-gamma / log-sum-exp utilities

#![warn(missing_docs)]

pub mod data;
pub mod linalg;
pub mod math;
pub mod model;
pub mod predict;
pub mod report;
pub mod search;
pub mod store;

pub use data::{Dataset, Schema, Value};
pub use model::{ClassParams, Model};
pub use search::{search, Classification, SearchConfig, SearchResult};
