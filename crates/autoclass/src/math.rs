//! Numerical utilities: log-gamma, log-sum-exp, and related helpers.
//!
//! Everything downstream works in log space; these routines are the only
//! places where precision-sensitive transcendental math happens, so they
//! are tested against known values to ~1e-12.

/// ln(2π), used by every Gaussian log-density.
pub const LN_2PI: f64 = 1.8378770664093453;

/// Natural log of the gamma function for `x > 0`, via the Lanczos
/// approximation (g = 7, n = 9 coefficients; |rel err| < 1e-13 over the
/// positive axis after the reflection used for x < 0.5).
#[allow(clippy::excessive_precision)] // canonical published Lanczos coefficients
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    assert!(x > 0.0 && x.is_finite(), "ln_gamma requires finite x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * LN_2PI + (x + 0.5) * t.ln() - t + a.ln()
}

/// Numerically stable `ln(Σ exp(v_i))` over a slice. Returns `-inf` for an
/// empty slice (the empty sum).
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        // All -inf (or empty): the sum is exp(-inf) * n = 0, or max is +inf.
        return max;
    }
    let sum: f64 = values.iter().map(|v| (v - max).exp()).sum();
    max + sum.ln()
}

/// In-place softmax of log-values: replaces `v_i` with
/// `exp(v_i - logsumexp(v))` and returns the log normalizer. The output
/// sums to 1 (up to rounding) whenever at least one input is finite.
pub fn normalize_log_weights(values: &mut [f64]) -> f64 {
    let lse = log_sum_exp(values);
    if !lse.is_finite() {
        // Degenerate: spread uniformly rather than emit NaNs.
        let u = 1.0 / values.len().max(1) as f64;
        values.iter_mut().for_each(|v| *v = u);
        return lse;
    }
    values.iter_mut().for_each(|v| *v = (*v - lse).exp());
    lse
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(3) = 2, Γ(4) = 6, Γ(5) = 24
        assert!(close(ln_gamma(1.0), 0.0, 1e-12), "{}", ln_gamma(1.0));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(3.0), 2.0f64.ln(), 1e-12));
        assert!(close(ln_gamma(4.0), 6.0f64.ln(), 1e-12));
        assert!(close(ln_gamma(5.0), 24.0f64.ln(), 1e-12));
        // Γ(0.5) = sqrt(π)
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
        // Γ(1.5) = sqrt(π)/2
        assert!(close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-12));
        // Large argument: ln Γ(171) = ln(170!) = Σ ln k.
        let ln_170_fact: f64 = (1..=170u32).map(|k| f64::from(k).ln()).sum();
        assert!(close(ln_gamma(171.0), ln_170_fact, 1e-11));
    }

    #[test]
    fn ln_gamma_satisfies_recurrence() {
        // ln Γ(x+1) = ln Γ(x) + ln x
        for x in [0.1, 0.7, 1.3, 2.5, 10.0, 123.456] {
            assert!(
                close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-11),
                "x={x}: {} vs {}",
                ln_gamma(x + 1.0),
                ln_gamma(x) + x.ln()
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires finite x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn log_sum_exp_basic() {
        assert!(close(log_sum_exp(&[0.0, 0.0]), 2.0f64.ln(), 1e-12));
        assert!(close(log_sum_exp(&[1.0]), 1.0, 1e-12));
        // Shift invariance without overflow.
        let a = log_sum_exp(&[1000.0, 1000.0]);
        assert!(close(a, 1000.0 + 2.0f64.ln(), 1e-12), "{a}");
    }

    #[test]
    fn log_sum_exp_handles_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        assert!(close(log_sum_exp(&[f64::NEG_INFINITY, 0.0]), 0.0, 1e-12));
    }

    #[test]
    fn normalize_log_weights_sums_to_one() {
        let mut v = vec![-1000.0, -1001.0, -999.0];
        let lse = normalize_log_weights(&mut v);
        assert!(lse.is_finite());
        let sum: f64 = v.iter().sum();
        assert!(close(sum, 1.0, 1e-12), "{sum}");
        assert!(v[2] > v[0] && v[0] > v[1]);
    }

    #[test]
    fn normalize_log_weights_degenerate_goes_uniform() {
        let mut v = vec![f64::NEG_INFINITY; 4];
        normalize_log_weights(&mut v);
        assert_eq!(v, vec![0.25; 4]);
    }
}
