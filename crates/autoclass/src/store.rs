//! Saving and loading classification results — the role of AutoClass C's
//! `.results` files: a finished search can be stored, shipped, and later
//! used to classify new data without re-running the search.
//!
//! The format is a line-oriented plain-text format (one `key=value` list
//! per line, `#` comments). Floating-point values are written with Rust's
//! shortest-round-trip formatting, so loading reproduces every `f64`
//! bit-for-bit. The file is self-contained: it records the correlated
//! block structure alongside every class's term parameters, which is all
//! `predict` needs beyond the data schema.

use std::io::{BufRead, Write};

use crate::model::{Approximation, ClassParams, Model, TermParams};
use crate::search::Classification;

/// Magic first line; bump the version when the format changes.
const HEADER: &str = "autoclass-results v1";

/// Errors from parsing a results file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError {
    /// 1-based line number (0 = preamble/structure problems).
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "results file, line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for StoreError {}

fn err(line: usize, detail: impl Into<String>) -> StoreError {
    StoreError { line, detail: detail.into() }
}

fn fmt_f64s(values: &[f64]) -> String {
    values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_f64s(line: usize, s: &str) -> Result<Vec<f64>, StoreError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|v| v.parse::<f64>().map_err(|_| err(line, format!("bad float {v:?}"))))
        .collect()
}

fn parse_usizes(line: usize, s: &str) -> Result<Vec<usize>, StoreError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|v| v.parse::<usize>().map_err(|_| err(line, format!("bad index {v:?}"))))
        .collect()
}

/// Key=value splitter for one record line.
fn fields(line_no: usize, line: &str) -> Result<Vec<(String, String)>, StoreError> {
    line.split_whitespace()
        .skip(1) // the record tag
        .map(|kv| {
            kv.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| err(line_no, format!("expected key=value, got {kv:?}")))
        })
        .collect()
}

fn get<'a>(line: usize, kvs: &'a [(String, String)], key: &str) -> Result<&'a str, StoreError> {
    kvs.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| err(line, format!("missing field {key:?}")))
}

/// Write classifications (best first) and the correlated block structure.
pub fn write_results<W: Write>(
    mut w: W,
    classifications: &[Classification],
    correlated_blocks: &[Vec<usize>],
) -> std::io::Result<()> {
    writeln!(w, "{HEADER}")?;
    writeln!(w, "# P-AutoClass reproduction results file")?;
    for block in correlated_blocks {
        writeln!(
            w,
            "block attrs={}",
            block.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
        )?;
    }
    for c in classifications {
        writeln!(
            w,
            "classification j_initial={} cycles={} converged={} seed={} log_prior={} \
             ll={} cll={} marginal={} cs={}",
            c.j_initial,
            c.cycles,
            c.converged,
            c.seed,
            c.log_prior,
            c.approx.log_likelihood,
            c.approx.complete_ll,
            c.approx.complete_marginal,
            c.approx.cs_score,
        )?;
        for class in &c.classes {
            writeln!(w, "class weight={} pi={}", class.weight, class.pi)?;
            for term in &class.terms {
                match term {
                    TermParams::Normal { mean, sigma, .. } => {
                        writeln!(w, "term kind=normal mean={mean} sigma={sigma}")?;
                    }
                    TermParams::LogNormal { mean, sigma, .. } => {
                        writeln!(w, "term kind=lognormal mean={mean} sigma={sigma}")?;
                    }
                    TermParams::Multinomial { log_p } => {
                        writeln!(w, "term kind=multinomial log_p={}", fmt_f64s(log_p))?;
                    }
                    TermParams::MultiNormal { mean, chol, .. } => {
                        writeln!(
                            w,
                            "term kind=multinormal mean={} chol={}",
                            fmt_f64s(mean),
                            fmt_f64s(chol)
                        )?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Load a results file: the classifications (in file order) and the
/// correlated block structure they were fitted under.
#[allow(clippy::type_complexity)]
pub fn read_results<R: BufRead>(
    r: R,
) -> Result<(Vec<Classification>, Vec<Vec<usize>>), StoreError> {
    let mut lines = r.lines().enumerate();
    let (_, first) = lines.next().ok_or_else(|| err(0, "empty file"))?;
    let first = first.map_err(|e| err(1, e.to_string()))?;
    if first.trim() != HEADER {
        return Err(err(1, format!("bad header {first:?} (expected {HEADER:?})")));
    }

    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut classifications: Vec<Classification> = Vec::new();

    for (i, line) in lines {
        let line_no = i + 1;
        let line = line.map_err(|e| err(line_no, e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tag = trimmed.split_whitespace().next().unwrap_or_default();
        let kvs = fields(line_no, trimmed)?;
        match tag {
            "block" => blocks.push(parse_usizes(line_no, get(line_no, &kvs, "attrs")?)?),
            "classification" => {
                let p = |key: &str| -> Result<f64, StoreError> {
                    get(line_no, &kvs, key)?
                        .parse()
                        .map_err(|_| err(line_no, format!("bad float in {key}")))
                };
                classifications.push(Classification {
                    classes: Vec::new(),
                    j_initial: get(line_no, &kvs, "j_initial")?
                        .parse()
                        .map_err(|_| err(line_no, "bad j_initial"))?,
                    approx: Approximation {
                        log_likelihood: p("ll")?,
                        complete_ll: p("cll")?,
                        complete_marginal: p("marginal")?,
                        cs_score: p("cs")?,
                    },
                    log_prior: p("log_prior")?,
                    cycles: get(line_no, &kvs, "cycles")?
                        .parse()
                        .map_err(|_| err(line_no, "bad cycles"))?,
                    converged: get(line_no, &kvs, "converged")?
                        .parse()
                        .map_err(|_| err(line_no, "bad converged"))?,
                    seed: get(line_no, &kvs, "seed")?
                        .parse()
                        .map_err(|_| err(line_no, "bad seed"))?,
                });
            }
            "class" => {
                let c = classifications
                    .last_mut()
                    .ok_or_else(|| err(line_no, "class before classification"))?;
                let weight: f64 = get(line_no, &kvs, "weight")?
                    .parse()
                    .map_err(|_| err(line_no, "bad weight"))?;
                let pi: f64 =
                    get(line_no, &kvs, "pi")?.parse().map_err(|_| err(line_no, "bad pi"))?;
                if !(pi > 0.0 && pi <= 1.0) {
                    return Err(err(line_no, format!("pi out of range: {pi}")));
                }
                c.classes.push(ClassParams::new(weight, pi, Vec::new()));
            }
            "term" => {
                let class = classifications
                    .last_mut()
                    .and_then(|c| c.classes.last_mut())
                    .ok_or_else(|| err(line_no, "term before class"))?;
                let kind = get(line_no, &kvs, "kind")?;
                let term = match kind {
                    "normal" | "lognormal" => {
                        let mean: f64 = get(line_no, &kvs, "mean")?
                            .parse()
                            .map_err(|_| err(line_no, "bad mean"))?;
                        let sigma: f64 = get(line_no, &kvs, "sigma")?
                            .parse()
                            .map_err(|_| err(line_no, "bad sigma"))?;
                        if sigma <= 0.0 {
                            return Err(err(line_no, format!("sigma must be positive: {sigma}")));
                        }
                        if kind == "normal" {
                            TermParams::normal(mean, sigma)
                        } else {
                            TermParams::log_normal(mean, sigma)
                        }
                    }
                    "multinomial" => TermParams::Multinomial {
                        log_p: parse_f64s(line_no, get(line_no, &kvs, "log_p")?)?,
                    },
                    "multinormal" => {
                        let mean = parse_f64s(line_no, get(line_no, &kvs, "mean")?)?;
                        let chol = parse_f64s(line_no, get(line_no, &kvs, "chol")?)?;
                        if chol.len() != mean.len() * mean.len() {
                            return Err(err(line_no, "chol length must be d²"));
                        }
                        let d = mean.len();
                        let log_det = crate::linalg::log_det_from_chol(&chol, d);
                        if !log_det.is_finite() {
                            return Err(err(line_no, "degenerate Cholesky factor"));
                        }
                        let log_norm = -0.5 * d as f64 * crate::math::LN_2PI - 0.5 * log_det;
                        TermParams::MultiNormal { mean, chol, log_norm }
                    }
                    other => return Err(err(line_no, format!("unknown term kind {other:?}"))),
                };
                class.terms.push(term);
            }
            other => return Err(err(line_no, format!("unknown record {other:?}"))),
        }
    }
    if classifications.is_empty() {
        return Err(err(0, "file holds no classifications"));
    }
    Ok((classifications, blocks))
}

/// Validate a loaded classification against a model built for the same
/// schema/structure (term counts and kinds must line up); returns a
/// message describing the first mismatch.
pub fn check_against_model(model: &Model, c: &Classification) -> Result<(), String> {
    for (ci, class) in c.classes.iter().enumerate() {
        if class.terms.len() != model.n_groups() {
            return Err(format!(
                "class {ci} has {} terms but the model has {} groups",
                class.terms.len(),
                model.n_groups()
            ));
        }
        for (gi, (term, group)) in class.terms.iter().zip(&model.groups).enumerate() {
            let ok = matches!(
                (term, &group.prior),
                (TermParams::Normal { .. }, crate::model::TermPrior::Normal { .. })
                    | (TermParams::LogNormal { .. }, crate::model::TermPrior::LogNormal { .. })
                    | (TermParams::Multinomial { .. }, crate::model::TermPrior::Multinomial { .. })
                    | (TermParams::MultiNormal { .. }, crate::model::TermPrior::MultiNormal { .. })
            );
            if !ok {
                return Err(format!("class {ci}, group {gi}: term kind mismatch"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, GlobalStats, Schema, Value};
    use crate::search::{search, SearchConfig};

    fn sample_result() -> (Dataset, Vec<Classification>) {
        let schema = Schema::reals(1, 0.05);
        let rows: Vec<Vec<Value>> = (0..80)
            .map(|i| {
                let c = if i % 2 == 0 { -4.0 } else { 4.0 };
                vec![Value::Real(c + (i as f64 * 0.71).sin())]
            })
            .collect();
        let data = Dataset::from_rows(schema, &rows);
        let r = search(&data.full_view(), &SearchConfig::quick(vec![2], 9));
        (data, r.all)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let (_, all) = sample_result();
        let mut buf = Vec::new();
        write_results(&mut buf, &all, &[]).unwrap();
        let (back, blocks) = read_results(buf.as_slice()).unwrap();
        assert!(blocks.is_empty());
        assert_eq!(back.len(), all.len());
        for (a, b) in back.iter().zip(&all) {
            assert_eq!(a.approx, b.approx, "scores must round-trip exactly");
            assert_eq!(a.classes, b.classes, "parameters must round-trip exactly");
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.converged, b.converged);
        }
    }

    #[test]
    fn blocks_round_trip() {
        let (_, all) = sample_result();
        let mut buf = Vec::new();
        write_results(&mut buf, &all, &[vec![0, 1], vec![3, 4, 5]]).unwrap();
        let (_, blocks) = read_results(buf.as_slice()).unwrap();
        assert_eq!(blocks, vec![vec![0, 1], vec![3, 4, 5]]);
    }

    #[test]
    fn header_is_checked() {
        let e = read_results("not a results file\n".as_bytes()).unwrap_err();
        assert!(e.detail.contains("bad header"), "{e}");
    }

    #[test]
    fn corrupt_floats_are_reported_with_line() {
        let text = format!(
            "{HEADER}\nclassification j_initial=2 cycles=1 converged=true seed=1 \
                            log_prior=0 ll=banana cll=0 marginal=0 cs=0\n"
        );
        let e = read_results(text.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.detail.contains("ll"), "{e}");
    }

    #[test]
    fn orphan_records_are_rejected() {
        let text = format!("{HEADER}\nclass weight=1 pi=0.5\n");
        let e = read_results(text.as_bytes()).unwrap_err();
        assert!(e.detail.contains("class before classification"), "{e}");

        let text = format!("{HEADER}\nterm kind=normal mean=0 sigma=1\n");
        let e = read_results(text.as_bytes()).unwrap_err();
        assert!(e.detail.contains("term before class"), "{e}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let text = format!(
            "{HEADER}\nclassification j_initial=2 cycles=1 converged=true seed=1 \
             log_prior=0 ll=0 cll=0 marginal=0 cs=0\nclass weight=1 pi=2.0\n"
        );
        let e = read_results(text.as_bytes()).unwrap_err();
        assert!(e.detail.contains("pi out of range"), "{e}");
    }

    #[test]
    fn loaded_classification_predicts_like_the_original() {
        let (data, all) = sample_result();
        let best = &all[0];
        let mut buf = Vec::new();
        write_results(&mut buf, std::slice::from_ref(best), &[]).unwrap();
        let (loaded, _) = read_results(buf.as_slice()).unwrap();

        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &stats);
        check_against_model(&model, &loaded[0]).unwrap();
        for x in [-4.5, 0.0, 4.5] {
            let a = crate::predict::posterior(&model, &best.classes, &[Value::Real(x)]);
            let b = crate::predict::posterior(&model, &loaded[0].classes, &[Value::Real(x)]);
            assert_eq!(a, b, "x={x}");
        }
    }

    #[test]
    fn check_against_model_catches_mismatch() {
        let (data, all) = sample_result();
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &stats);
        let mut c = all[0].clone();
        c.classes[0].terms.push(TermParams::normal(0.0, 1.0));
        assert!(check_against_model(&model, &c).is_err());
    }
}
