//! Posterior class membership for individual items (scoring new data
//! against a finished classification).

use crate::data::dataset::Value;
use crate::data::schema::AttributeKind;
use crate::math::normalize_log_weights;
use crate::model::{ClassParams, Model};

/// Posterior membership probabilities of one item across the classes.
/// Missing values simply contribute nothing, as in training.
///
/// # Panics
/// Panics if the row's arity or value kinds disagree with the model's
/// schema.
pub fn posterior(model: &Model, classes: &[ClassParams], row: &[Value]) -> Vec<f64> {
    assert_eq!(row.len(), model.n_attrs(), "row arity mismatch");
    let mut log_w: Vec<f64> = classes
        .iter()
        .map(|class| {
            let mut lp = class.log_pi;
            for (term, group) in class.terms.iter().zip(&model.groups) {
                if group.attrs.len() > 1 {
                    // Correlated block: gather the block's values; any
                    // missing component marks the whole block missing.
                    let mut x = Vec::with_capacity(group.attrs.len());
                    for &a in &group.attrs {
                        match &row[a] {
                            Value::Real(v) => x.push(*v),
                            Value::Missing => x.push(f64::NAN),
                            Value::Discrete(_) => {
                                panic!("discrete value in a correlated real block")
                            }
                        }
                    }
                    lp += term.log_prob_vec(&x);
                    continue;
                }
                let a = group.attrs[0];
                let attr = &model.schema.attributes[a];
                let models_missing = matches!(
                    &group.prior,
                    crate::model::TermPrior::Multinomial { missing_level: true, .. }
                );
                lp += match (&row[a], &attr.kind) {
                    (Value::Missing, _) if models_missing => {
                        term.log_prob_discrete_with_missing(crate::data::dataset::MISSING_DISCRETE)
                    }
                    (Value::Missing, _) => 0.0,
                    (Value::Real(x), AttributeKind::Real { .. })
                    | (Value::Real(x), AttributeKind::PositiveReal { .. }) => {
                        term.log_prob_real(*x)
                    }
                    (Value::Discrete(l), AttributeKind::Discrete { levels, .. }) => {
                        assert!((*l as usize) < *levels, "level out of range");
                        if models_missing {
                            term.log_prob_discrete_with_missing(*l)
                        } else {
                            term.log_prob_discrete(*l)
                        }
                    }
                    _ => panic!("value kind does not match schema"),
                };
            }
            lp
        })
        .collect();
    normalize_log_weights(&mut log_w);
    log_w
}

/// Index of the most probable class for one item, with its probability.
pub fn classify(model: &Model, classes: &[ClassParams], row: &[Value]) -> (usize, f64) {
    let post = posterior(model, classes, row);
    post.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, &p)| (i, p))
        // lint:allow(unwrap): classifications always hold at least one class
        .expect("at least one class")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::Dataset;
    use crate::data::schema::{Attribute, Schema};
    use crate::data::stats::GlobalStats;
    use crate::model::prior::TermParams;

    fn setup() -> (Model, Vec<ClassParams>) {
        let schema = Schema::new(vec![Attribute::real("x", 0.01), Attribute::discrete("c", 2)]);
        let data = Dataset::from_rows(
            schema.clone(),
            &[
                vec![Value::Real(-5.0), Value::Discrete(0)],
                vec![Value::Real(5.0), Value::Discrete(1)],
            ],
        );
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(schema, &stats);
        let classes = vec![
            ClassParams::new(
                1.0,
                0.5,
                vec![
                    TermParams::normal(-5.0, 1.0),
                    TermParams::Multinomial { log_p: vec![(0.9f64).ln(), (0.1f64).ln()] },
                ],
            ),
            ClassParams::new(
                1.0,
                0.5,
                vec![
                    TermParams::normal(5.0, 1.0),
                    TermParams::Multinomial { log_p: vec![(0.1f64).ln(), (0.9f64).ln()] },
                ],
            ),
        ];
        (model, classes)
    }

    #[test]
    fn posterior_sums_to_one_and_prefers_the_near_class() {
        let (model, classes) = setup();
        let p = posterior(&model, &classes, &[Value::Real(-4.5), Value::Discrete(0)]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > 0.99, "{p:?}");
    }

    #[test]
    fn missing_values_are_neutral() {
        let (model, classes) = setup();
        // Only the discrete attribute speaks.
        let p = posterior(&model, &classes, &[Value::Missing, Value::Discrete(1)]);
        assert!(p[1] > 0.8, "{p:?}");
        // Everything missing: posterior equals the mixture proportions.
        let p = posterior(&model, &classes, &[Value::Missing, Value::Missing]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classify_returns_argmax() {
        let (model, classes) = setup();
        let (idx, p) = classify(&model, &classes, &[Value::Real(4.0), Value::Discrete(1)]);
        assert_eq!(idx, 1);
        assert!(p > 0.99);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_rejected() {
        let (model, classes) = setup();
        posterior(&model, &classes, &[Value::Real(0.0)]);
    }
}
