//! `CycleWorkspace`: every reusable buffer one EM cycle needs, bundled so
//! a whole `BIG_LOOP` search (and the parallel driver's rank bodies) can
//! run `base_cycle` with zero per-cycle heap allocation once warm.
//!
//! Lifecycle: create one workspace per search (or per rank), call
//! [`CycleWorkspace::reset_stats`] at the top of each cycle, and thread the
//! pieces through `update_wts_into` / `SuffStats::accumulate` /
//! `stats_to_classes_into`. Buffers only ever grow (to the high-water mark
//! of the shapes seen), so steady-state cycles touch no allocator — a
//! property asserted by the counting-allocator test in
//! `tests/alloc_free.rs`.

use crate::model::class::Model;
use crate::model::estep::{EStepScratch, WtsMatrix};
use crate::model::suffstats::{StatLayout, SuffStats};

/// Reusable buffers for one EM cycle (E-step, statistics, M-step, plus a
/// flat scratch for parameter serialization in the parallel driver).
#[derive(Debug, Clone, Default)]
pub struct CycleWorkspace {
    /// The item × class weight matrix, reused across cycles.
    pub wts: WtsMatrix,
    /// E-step scratch (class weight sums, row buffer, MVN gathers).
    pub estep: EStepScratch,
    /// Sufficient statistics, rebuilt only when the model shape changes.
    /// `None` until the first [`reset_stats`](CycleWorkspace::reset_stats).
    pub stats: Option<SuffStats>,
    /// Flat parameter scratch (`classes_to_flat`-style serialization in
    /// the parallel driver's gather/broadcast and replication checks).
    pub flat: Vec<f64>,
    /// Carry buffer for the fused single-pass E+M kernel
    /// (`update_wts_and_stats_into`): the scalar accumulation chains
    /// threaded across tiles. Sized on first fused call, then reused.
    pub accum: Vec<f64>,
}

impl CycleWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        CycleWorkspace::default()
    }

    /// Prepare the statistics buffer for a cycle with `j` classes:
    /// zero-fill in place when the existing layout still matches the model
    /// shape, rebuild (allocating) only after a shape change such as class
    /// death or a new search trial.
    pub fn reset_stats(&mut self, model: &Model, j: usize) {
        let reusable = self.stats.as_ref().is_some_and(|s| {
            s.layout.j == j
                && s.layout.attr_blocks.len() == model.groups.len()
                && s.layout
                    .attr_blocks
                    .iter()
                    .zip(&model.groups)
                    .all(|(&(_, len), g)| len == g.prior.stat_len())
        });
        if reusable {
            if let Some(s) = self.stats.as_mut() {
                s.data.fill(0.0);
            }
        } else {
            self.stats = Some(SuffStats::zeros(StatLayout::new(model, j)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::{Attribute, Schema};
    use crate::data::stats::GlobalStats;

    fn tiny_model() -> Model {
        let schema = Schema::new(vec![Attribute::real("x", 0.01)]);
        let data =
            Dataset::from_rows(schema.clone(), &[vec![Value::Real(0.0)], vec![Value::Real(1.0)]]);
        let stats = GlobalStats::compute(&data.full_view());
        Model::new(schema, &stats)
    }

    #[test]
    fn reset_stats_reuses_matching_layout() {
        let model = tiny_model();
        let mut ws = CycleWorkspace::new();
        ws.reset_stats(&model, 3);
        let ptr = ws.stats.as_ref().map(|s| s.data.as_ptr());
        if let Some(s) = ws.stats.as_mut() {
            s.data.iter_mut().for_each(|v| *v = 7.0);
        }
        ws.reset_stats(&model, 3);
        let s = ws.stats.as_ref().expect("stats installed");
        assert_eq!(ptr, Some(s.data.as_ptr()), "matching layout must reuse the buffer");
        assert!(s.data.iter().all(|&v| v.abs() < 1e-300), "buffer must be zeroed");
        // Different class count: rebuilt.
        ws.reset_stats(&model, 2);
        assert_eq!(ws.stats.as_ref().map(|s| s.layout.j), Some(2));
    }
}
