//! `update_parameters`: the M-step. Turns global sufficient statistics
//! into MAP class parameters. Purely deterministic given the statistics,
//! which is why every processor in P-AutoClass can compute identical
//! parameters after the Allreduce.

use crate::model::class::{ClassParams, Model};
use crate::model::suffstats::SuffStats;

/// Compute MAP parameters for every class from global statistics.
///
/// Returns the classes and the abstract op count (for virtual time; the
/// per-class work is proportional to the statistics length).
pub fn stats_to_classes(model: &Model, stats: &SuffStats) -> (Vec<ClassParams>, u64) {
    let j = stats.layout.j;
    let n = model.n_total;
    let mut classes = Vec::with_capacity(j);
    for c in 0..j {
        let weight = stats.class_weight(c);
        let pi = Model::map_pi(weight, n, j);
        let terms = model
            .groups
            .iter()
            .enumerate()
            .map(|(k, group)| group.prior.map_params(stats.attr_stats(c, k)))
            .collect();
        classes.push(ClassParams::new(weight, pi, terms));
    }
    let ops = (j * stats.layout.stride) as u64;
    (classes, ops)
}

/// In-place variant of [`stats_to_classes`] for the allocation-free EM
/// cycle: when `classes` already has the right shape (same class count,
/// same term count per class — the steady state of a `BIG_LOOP` search)
/// every class is updated without heap allocation; after a shape change
/// (first cycle, class death) it falls back to a full rebuild.
///
/// Returns the abstract op count, matching [`stats_to_classes`].
pub fn stats_to_classes_into(
    model: &Model,
    stats: &SuffStats,
    classes: &mut Vec<ClassParams>,
) -> u64 {
    let j = stats.layout.j;
    let reusable =
        classes.len() == j && classes.iter().all(|c| c.terms.len() == model.groups.len());
    if !reusable {
        let (rebuilt, ops) = stats_to_classes(model, stats);
        *classes = rebuilt;
        return ops;
    }
    let mut ops = 0;
    for (c, class) in classes.iter_mut().enumerate() {
        ops += stats_to_class_into(model, stats, c, class);
    }
    ops
}

/// Update a single class in place from global statistics — the per-class
/// unit of [`stats_to_classes_into`]. The pipelined driver calls this as
/// each class chunk's allreduce completes, deriving class `c`'s parameters
/// while later chunks are still on the wire. `class` must already have the
/// right term shape. Returns the abstract op count (one class stride),
/// summing over classes to exactly the [`stats_to_classes_into`] count.
pub fn stats_to_class_into(
    model: &Model,
    stats: &SuffStats,
    c: usize,
    class: &mut ClassParams,
) -> u64 {
    let j = stats.layout.j;
    let n = model.n_total;
    let weight = stats.class_weight(c);
    let pi = Model::map_pi(weight, n, j);
    assert!(pi > 0.0 && pi <= 1.0, "mixture proportion out of range: {pi}");
    class.weight = weight;
    class.pi = pi;
    class.log_pi = pi.ln();
    for (k, (group, term)) in model.groups.iter().zip(&mut class.terms).enumerate() {
        group.prior.map_params_into(stats.attr_stats(c, k), term);
    }
    stats.layout.stride as u64
}

/// Log prior density of a full classification's parameters at their MAP
/// values: the mixture-proportion Dirichlet plus every term prior.
/// Reported alongside the likelihood; also exercised by tests to ensure
/// priors stay proper (finite) everywhere the search can reach.
pub fn log_param_prior(model: &Model, classes: &[ClassParams]) -> f64 {
    let j = classes.len() as f64;
    // Uniform Dirichlet(1) over proportions: density Γ(J) on the simplex.
    let mut lp = crate::math::ln_gamma(j);
    for class in classes {
        for (group, term) in model.groups.iter().zip(&class.terms) {
            lp += group.prior.log_param_prior(term);
        }
    }
    lp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::{Attribute, Schema};
    use crate::data::stats::GlobalStats;
    use crate::model::estep::{update_wts, WtsMatrix};
    use crate::model::prior::TermParams;
    use crate::model::suffstats::{StatLayout, SuffStats};

    fn setup() -> (Dataset, Model) {
        let schema = Schema::new(vec![Attribute::real("x", 0.01), Attribute::discrete("c", 2)]);
        let data = Dataset::from_rows(
            schema.clone(),
            &[
                vec![Value::Real(-4.0), Value::Discrete(0)],
                vec![Value::Real(-4.2), Value::Discrete(0)],
                vec![Value::Real(4.0), Value::Discrete(1)],
                vec![Value::Real(4.2), Value::Discrete(1)],
            ],
        );
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(schema, &stats);
        (data, model)
    }

    #[test]
    fn em_cycle_moves_means_toward_clusters() {
        let (data, model) = setup();
        // Start slightly off-center.
        let classes = vec![
            ClassParams::new(
                2.0,
                0.5,
                vec![
                    TermParams::normal(-1.0, 3.0),
                    TermParams::Multinomial { log_p: vec![(0.5f64).ln(); 2] },
                ],
            ),
            ClassParams::new(
                2.0,
                0.5,
                vec![
                    TermParams::normal(1.0, 3.0),
                    TermParams::Multinomial { log_p: vec![(0.5f64).ln(); 2] },
                ],
            ),
        ];
        let mut wts = WtsMatrix::new(0, 0);
        let mut new_classes = classes;
        let mut ops = 0;
        for _ in 0..15 {
            update_wts(&model, &data.full_view(), &new_classes, &mut wts);
            let mut stats = SuffStats::zeros(StatLayout::new(&model, 2));
            stats.accumulate(&model, &data.full_view(), &wts);
            (new_classes, ops) = stats_to_classes(&model, &stats);
        }
        assert!(ops > 0);
        let m0 = match new_classes[0].terms[0] {
            TermParams::Normal { mean, .. } => mean,
            _ => panic!(),
        };
        let m1 = match new_classes[1].terms[0] {
            TermParams::Normal { mean, .. } => mean,
            _ => panic!(),
        };
        assert!(m0 < -2.0, "class 0 mean should move toward -4.x, got {m0}");
        assert!(m1 > 2.0, "class 1 mean should move toward +4.x, got {m1}");
        // Proportions stay normalized.
        let pi_sum: f64 = new_classes.iter().map(|c| c.pi).sum();
        assert!((pi_sum - 1.0).abs() < 1e-9, "{pi_sum}");
    }

    #[test]
    fn em_does_not_decrease_log_likelihood() {
        // The defining property of EM. Run several cycles and check
        // monotonicity of the incomplete-data log likelihood.
        let (data, model) = setup();
        let mut classes = vec![
            ClassParams::new(
                2.0,
                0.5,
                vec![
                    TermParams::normal(-0.5, 4.0),
                    TermParams::Multinomial { log_p: vec![(0.6f64).ln(), (0.4f64).ln()] },
                ],
            ),
            ClassParams::new(
                2.0,
                0.5,
                vec![
                    TermParams::normal(0.5, 4.0),
                    TermParams::Multinomial { log_p: vec![(0.4f64).ln(), (0.6f64).ln()] },
                ],
            ),
        ];
        let mut wts = WtsMatrix::new(0, 0);
        let mut prev = f64::NEG_INFINITY;
        for cycle in 0..10 {
            let e = update_wts(&model, &data.full_view(), &classes, &mut wts);
            assert!(
                e.log_likelihood >= prev - 1e-9,
                "cycle {cycle}: ll decreased {prev} -> {}",
                e.log_likelihood
            );
            prev = e.log_likelihood;
            let mut stats = SuffStats::zeros(StatLayout::new(&model, 2));
            stats.accumulate(&model, &data.full_view(), &wts);
            classes = stats_to_classes(&model, &stats).0;
        }
    }

    #[test]
    fn in_place_mstep_matches_rebuild_bitwise() {
        let (data, model) = setup();
        let classes = vec![
            ClassParams::new(
                2.0,
                0.5,
                vec![
                    TermParams::normal(-1.0, 3.0),
                    TermParams::Multinomial { log_p: vec![(0.5f64).ln(); 2] },
                ],
            ),
            ClassParams::new(
                2.0,
                0.5,
                vec![
                    TermParams::normal(1.0, 3.0),
                    TermParams::Multinomial { log_p: vec![(0.5f64).ln(); 2] },
                ],
            ),
        ];
        let mut wts = WtsMatrix::new(0, 0);
        update_wts(&model, &data.full_view(), &classes, &mut wts);
        let mut stats = SuffStats::zeros(StatLayout::new(&model, 2));
        stats.accumulate(&model, &data.full_view(), &wts);

        let (rebuilt, ops) = stats_to_classes(&model, &stats);
        let mut in_place = classes;
        let ops2 = stats_to_classes_into(&model, &stats, &mut in_place);
        assert_eq!(ops, ops2);
        for (a, b) in rebuilt.iter().zip(&in_place) {
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            assert_eq!(a.pi.to_bits(), b.pi.to_bits());
            assert_eq!(a.log_pi.to_bits(), b.log_pi.to_bits());
            assert_eq!(a.terms, b.terms, "in-place terms must equal the rebuild");
        }
        // Shape mismatch (class death) falls back to a rebuild.
        let mut shrunk = vec![in_place[0].clone()];
        stats_to_classes_into(&model, &stats, &mut shrunk);
        assert_eq!(shrunk.len(), 2);
    }

    #[test]
    fn log_param_prior_is_finite_after_updates() {
        let (data, model) = setup();
        let classes = vec![ClassParams::new(
            4.0,
            1.0,
            vec![
                TermParams::normal(0.0, 1.0),
                TermParams::Multinomial { log_p: vec![(0.5f64).ln(); 2] },
            ],
        )];
        let mut wts = WtsMatrix::new(0, 0);
        update_wts(&model, &data.full_view(), &classes, &mut wts);
        let mut stats = SuffStats::zeros(StatLayout::new(&model, 1));
        stats.accumulate(&model, &data.full_view(), &wts);
        let (classes, _) = stats_to_classes(&model, &stats);
        assert!(log_param_prior(&model, &classes).is_finite());
    }
}
