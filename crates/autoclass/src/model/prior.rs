//! Per-attribute model terms: conjugate priors, MAP updates, and
//! complete-data marginals.
//!
//! AutoClass models each attribute independently within a class ("single"
//! model terms). Three term families are implemented:
//!
//! * [`TermPrior::Normal`] — AutoClass's `single_normal_cn` for real
//!   attributes: a Gaussian per class with a Normal-Inverse-Gamma (NIG)
//!   conjugate prior derived from the global data statistics
//!   (empirical Bayes, as AutoClass does), and the measurement error as a
//!   floor on the modeled standard deviation.
//! * [`TermPrior::LogNormal`] — `single_normal_ln` for strictly positive
//!   reals: the Normal term applied to ln(x) with the Jacobian term
//!   −ln(x) in the density.
//! * [`TermPrior::Multinomial`] — `single_multinomial` for discrete
//!   attributes: a per-class multinomial with a symmetric Dirichlet
//!   prior of concentration `α = 1/levels` (AutoClass's choice, which
//!   makes the MAP estimate `(c_l + 1/L)/(n + 1)`).
//!
//! Missing values contribute nothing to a term's statistics or density —
//! a documented simplification of AutoClass, which can optionally model
//! "missing" as an extra level.

use crate::data::schema::{Attribute, AttributeKind};
use crate::data::stats::GlobalStats;
use crate::math::{ln_gamma, LN_2PI};

/// Sufficient-statistic layout per term, always `[s0, s1, s2]` for the
/// normal families (weighted count, weighted sum, weighted sum of squares,
/// on the modeling scale) and per-level weighted counts for multinomials.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPrior {
    /// Gaussian class model with NIG prior.
    Normal {
        /// Prior mean (global mean).
        mean0: f64,
        /// Prior variance scale (global variance, floored).
        var0: f64,
        /// Prior pseudo-count on the mean.
        kappa0: f64,
        /// Prior pseudo-count on the variance (degrees of freedom).
        nu0: f64,
        /// Floor on the modeled standard deviation (measurement error).
        min_sigma: f64,
    },
    /// Gaussian on ln(x) with NIG prior (for strictly positive reals).
    LogNormal {
        /// Prior mean of ln(x).
        mean0: f64,
        /// Prior variance of ln(x), floored.
        var0: f64,
        /// Prior pseudo-count on the mean.
        kappa0: f64,
        /// Prior pseudo-count on the variance.
        nu0: f64,
        /// Floor on the modeled std-dev of ln(x) (relative error).
        min_sigma: f64,
    },
    /// Multinomial class model with symmetric Dirichlet prior.
    Multinomial {
        /// Number of observed levels L.
        levels: usize,
        /// Dirichlet concentration per level (AutoClass uses 1/L).
        alpha: f64,
        /// Model "missing" as an explicit extra level (AutoClass's
        /// informative-missingness option): the term then has L+1 slots,
        /// the last holding the missing level. When false, missing
        /// values contribute nothing (missing-at-random).
        missing_level: bool,
    },
    /// Jointly Gaussian block over `dim` real attributes with full
    /// covariance — AutoClass's `multi_normal_cn` term — under a
    /// Normal-Inverse-Wishart (NIW) conjugate prior. Statistics are
    /// `[s0, Σw·x (dim), Σw·x xᵀ packed lower-tri (dim(dim+1)/2)]`; items
    /// with *any* missing value in the block are skipped (a documented
    /// simplification).
    MultiNormal {
        /// Block dimensionality d.
        dim: usize,
        /// Prior mean μ0 (global means), length d.
        mean0: Vec<f64>,
        /// Prior scatter S0, dense row-major d×d (diag of global
        /// variances, so `E[Σ]` under the prior is the global diagonal).
        scatter0: Vec<f64>,
        /// Prior pseudo-count on the mean.
        kappa0: f64,
        /// Prior degrees of freedom (≥ d + 2 so the prior covariance
        /// expectation exists).
        nu0: f64,
        /// Diagonal jitter floor (smallest measurement error in the
        /// block) applied when the MAP covariance is near-singular.
        min_sigma: f64,
    },
}

/// Packed lower-triangle index for symmetric statistics: `(i, j)` with
/// `j ≤ i` maps to `i(i+1)/2 + j`.
#[inline]
pub fn tri_index(i: usize, j: usize) -> usize {
    debug_assert!(j <= i);
    i * (i + 1) / 2 + j
}

/// Prior pseudo-count on class-conditional means and variances: one
/// pseudo-observation at the global statistics. Matches AutoClass's
/// weakly-informative empirical priors.
const PSEUDO_COUNT: f64 = 1.0;

impl TermPrior {
    /// Build the prior for one attribute from the global statistics.
    pub fn for_attribute(attr: &Attribute, stats: &GlobalStats, c: usize) -> TermPrior {
        match attr.kind {
            AttributeKind::Real { error } => {
                let var0 = stats.variance(c).max(error * error);
                TermPrior::Normal {
                    mean0: stats.mean(c),
                    var0,
                    kappa0: PSEUDO_COUNT,
                    nu0: PSEUDO_COUNT,
                    min_sigma: error,
                }
            }
            AttributeKind::PositiveReal { error } => {
                let var0 = stats.ln_variance(c).max(error * error);
                TermPrior::LogNormal {
                    mean0: stats.ln_mean(c),
                    var0,
                    kappa0: PSEUDO_COUNT,
                    nu0: PSEUDO_COUNT,
                    min_sigma: error,
                }
            }
            AttributeKind::Discrete { levels, .. } => {
                TermPrior::Multinomial { levels, alpha: 1.0 / levels as f64, missing_level: false }
            }
        }
    }

    /// Build the NIW prior for a correlated block of real attributes.
    /// `mean0` and `vars0` are the attributes' global means/variances
    /// (variances floored by squared measurement errors).
    pub fn multi_normal(mean0: Vec<f64>, vars0: Vec<f64>, min_sigma: f64) -> TermPrior {
        let d = mean0.len();
        assert!(d >= 2, "a correlated block needs at least 2 attributes");
        assert_eq!(vars0.len(), d);
        let mut scatter0 = vec![0.0; d * d];
        for (i, &v) in vars0.iter().enumerate() {
            scatter0[i * d + i] = v.max(min_sigma * min_sigma);
        }
        TermPrior::MultiNormal {
            dim: d,
            mean0,
            scatter0,
            kappa0: PSEUDO_COUNT,
            // With νn-normalization E[Σ] = S0/(ν0 − d − 1); d+2 makes the
            // prior expectation exactly the global diagonal.
            nu0: (d + 2) as f64,
            min_sigma,
        }
    }

    /// Length of this term's per-class sufficient-statistic block.
    pub fn stat_len(&self) -> usize {
        match self {
            TermPrior::Normal { .. } | TermPrior::LogNormal { .. } => 3,
            TermPrior::Multinomial { levels, missing_level, .. } => {
                levels + usize::from(*missing_level)
            }
            TermPrior::MultiNormal { dim, .. } => 1 + dim + dim * (dim + 1) / 2,
        }
    }

    /// MAP parameters given a sufficient-statistic block.
    pub fn map_params(&self, stats: &[f64]) -> TermParams {
        debug_assert_eq!(stats.len(), self.stat_len());
        match *self {
            TermPrior::Normal { mean0, var0, kappa0, nu0, min_sigma } => {
                let (mean, sigma) =
                    nig_map(stats[0], stats[1], stats[2], mean0, var0, kappa0, nu0, min_sigma);
                TermParams::normal(mean, sigma)
            }
            TermPrior::LogNormal { mean0, var0, kappa0, nu0, min_sigma } => {
                let (mean, sigma) =
                    nig_map(stats[0], stats[1], stats[2], mean0, var0, kappa0, nu0, min_sigma);
                TermParams::log_normal(mean, sigma)
            }
            TermPrior::Multinomial { alpha, .. } => {
                // Slot count includes the optional missing level.
                let slots = stats.len() as f64;
                let total: f64 = stats.iter().sum();
                let denom = total + slots * alpha;
                let log_p = stats.iter().map(|c| ((c + alpha) / denom).ln()).collect();
                TermParams::Multinomial { log_p }
            }
            TermPrior::MultiNormal { dim, ref mean0, ref scatter0, kappa0, nu0, min_sigma } => {
                let (mean, cov) = niw_map(stats, dim, mean0, scatter0, kappa0, nu0, min_sigma);
                TermParams::multi_normal(mean, &cov, min_sigma)
            }
        }
    }

    /// In-place variant of [`map_params`] for the allocation-free M-step:
    /// when `out` already holds a parameter value of the matching shape it
    /// is overwritten without touching the heap. Normal/log-normal terms
    /// are plain scalar stores; multinomial refills the existing `log_p`
    /// vector. Correlated Gaussian blocks fall back to [`map_params`]
    /// (the NIW update builds a fresh Cholesky factor; documented in
    /// DESIGN.md as the one family outside the zero-allocation guarantee).
    ///
    /// [`map_params`]: TermPrior::map_params
    pub fn map_params_into(&self, stats: &[f64], out: &mut TermParams) {
        debug_assert_eq!(stats.len(), self.stat_len());
        match (self, &mut *out) {
            (TermPrior::Multinomial { alpha, .. }, TermParams::Multinomial { log_p })
                if log_p.len() == stats.len() =>
            {
                let slots = stats.len() as f64;
                let total: f64 = stats.iter().sum();
                let denom = total + slots * alpha;
                for (lp, c) in log_p.iter_mut().zip(stats) {
                    *lp = ((c + alpha) / denom).ln();
                }
            }
            // Normal/LogNormal construction is heap-free already; mismatched
            // shapes (first cycle, class death) rebuild via map_params.
            _ => *out = self.map_params(stats),
        }
    }

    /// Log prior density evaluated at MAP parameters (used in reports and
    /// as part of the posterior-at-MAP diagnostic).
    pub fn log_param_prior(&self, params: &TermParams) -> f64 {
        match (self, params) {
            (
                TermPrior::Normal { mean0, var0, kappa0, nu0, .. }
                | TermPrior::LogNormal { mean0, var0, kappa0, nu0, .. },
                TermParams::Normal { mean, sigma, .. } | TermParams::LogNormal { mean, sigma, .. },
            ) => nig_log_density(*mean, sigma * sigma, *mean0, *var0, *kappa0, *nu0),
            (TermPrior::Multinomial { alpha, .. }, TermParams::Multinomial { log_p }) => {
                let l = log_p.len() as f64;
                ln_gamma(l * alpha) - l * ln_gamma(*alpha)
                    + (alpha - 1.0) * log_p.iter().sum::<f64>()
            }
            (
                TermPrior::MultiNormal { dim, mean0, scatter0, kappa0, nu0, .. },
                TermParams::MultiNormal { mean, chol, .. },
            ) => {
                let d = *dim;
                let df = d as f64;
                let log_det_sigma = crate::linalg::log_det_from_chol(chol, d);
                let sigma_inv = crate::linalg::inverse_from_chol(chol, d);
                // ln N(μ | μ0, Σ/κ0)
                let diff: Vec<f64> = mean.iter().zip(mean0).map(|(a, b)| a - b).collect();
                let mut scratch = vec![0.0; d];
                let maha = crate::linalg::mahalanobis_sq(chol, d, &diff, &mut scratch);
                let ln_n = -0.5 * df * LN_2PI
                    - 0.5 * (log_det_sigma - df * kappa0.ln())
                    - 0.5 * kappa0 * maha;
                // ln IW(Σ | ν0, S0)
                let chol_s0 = crate::linalg::cholesky(scatter0, d)
                    // lint:allow(unwrap): prior scatter is positive definite by construction
                    .expect("prior scatter is positive definite");
                let log_det_s0 = crate::linalg::log_det_from_chol(&chol_s0, d);
                let ln_iw = 0.5 * nu0 * log_det_s0
                    - 0.5 * nu0 * df * 2.0f64.ln()
                    - crate::linalg::ln_multigamma(d, 0.5 * nu0)
                    - 0.5 * (nu0 + df + 1.0) * log_det_sigma
                    - 0.5 * crate::linalg::trace_product(scatter0, &sigma_inv, d);
                ln_n + ln_iw
            }
            _ => panic!("prior/parameter kind mismatch"),
        }
    }

    /// Complete-data log marginal likelihood of this term's block: the
    /// probability of the (weighted) class data with parameters integrated
    /// out against the conjugate prior. The Cheeseman–Stutz score sums
    /// these over classes and attributes.
    pub fn log_marginal(&self, stats: &[f64]) -> f64 {
        debug_assert_eq!(stats.len(), self.stat_len());
        match *self {
            TermPrior::Normal { mean0, var0, kappa0, nu0, .. } => {
                nig_log_marginal(stats[0], stats[1], stats[2], mean0, var0, kappa0, nu0)
            }
            TermPrior::LogNormal { mean0, var0, kappa0, nu0, .. } => {
                // On the ln scale; the Jacobian Σw·(−ln x) is part of the
                // complete-data likelihood and is carried by the E-step's
                // `complete_ll` term, so it cancels in the CS score.
                nig_log_marginal(stats[0], stats[1], stats[2], mean0, var0, kappa0, nu0)
            }
            TermPrior::Multinomial { alpha, .. } => {
                let l = stats.len() as f64;
                let total: f64 = stats.iter().sum();
                let mut out = ln_gamma(l * alpha) - ln_gamma(total + l * alpha);
                for &c in stats {
                    out += ln_gamma(c + alpha) - ln_gamma(alpha);
                }
                out
            }
            TermPrior::MultiNormal { dim, ref mean0, ref scatter0, kappa0, nu0, min_sigma } => {
                niw_log_marginal(stats, dim, mean0, scatter0, kappa0, nu0, min_sigma)
            }
        }
    }
}

/// Unpack the NIW posterior pieces shared by the MAP update and the
/// marginal: returns `(s0, x̄, Sn, κn, νn)` with `Sn` dense. Degenerate
/// `s0 ≈ 0` is handled by the callers.
#[allow(clippy::type_complexity)]
fn niw_posterior(
    stats: &[f64],
    d: usize,
    mean0: &[f64],
    scatter0: &[f64],
    kappa0: f64,
    nu0: f64,
) -> (f64, Vec<f64>, Vec<f64>, f64, f64) {
    let s0 = stats[0];
    let sums = &stats[1..1 + d];
    let cp = &stats[1 + d..];
    let xbar: Vec<f64> =
        if s0 > 0.0 { sums.iter().map(|s| s / s0).collect() } else { mean0.to_vec() };
    let kappa_n = kappa0 + s0;
    let nu_n = nu0 + s0;
    // Sn = S0 + (CP − s0·x̄x̄ᵀ) + κ0 s0/κn (x̄−μ0)(x̄−μ0)ᵀ
    let mut sn = scatter0.to_vec();
    if s0 > 0.0 {
        let shrink = kappa0 * s0 / kappa_n;
        for i in 0..d {
            for j in 0..=i {
                let scatter = cp[tri_index(i, j)] - s0 * xbar[i] * xbar[j];
                let pull = shrink * (xbar[i] - mean0[i]) * (xbar[j] - mean0[j]);
                let v = scatter + pull;
                sn[i * d + j] += v;
                if i != j {
                    sn[j * d + i] += v;
                }
            }
        }
    }
    (s0, xbar, sn, kappa_n, nu_n)
}

/// MAP mean/covariance of the NIW posterior. The covariance is floored by
/// adding `min_sigma²` diagonal jitter until it is positive definite.
fn niw_map(
    stats: &[f64],
    d: usize,
    mean0: &[f64],
    scatter0: &[f64],
    kappa0: f64,
    nu0: f64,
    min_sigma: f64,
) -> (Vec<f64>, Vec<f64>) {
    let (s0, _, sn, kappa_n, nu_n) = niw_posterior(stats, d, mean0, scatter0, kappa0, nu0);
    let sums = &stats[1..1 + d];
    let mean: Vec<f64> = (0..d).map(|i| (kappa0 * mean0[i] + sums[i]) / kappa_n).collect();
    let denom = nu_n + d as f64 + 2.0; // MAP of the NIW covariance
    let mut cov: Vec<f64> = sn.iter().map(|v| v / denom).collect();
    // Ensure positive-definiteness: symmetric by construction, but a
    // collapsed class can be rank-deficient; jitter the diagonal.
    let jitter = (min_sigma * min_sigma).max(1e-12);
    let mut tries = 0;
    while crate::linalg::cholesky(&cov, d).is_none() {
        for i in 0..d {
            cov[i * d + i] += jitter * (1 << tries) as f64;
        }
        tries += 1;
        assert!(tries < 64, "covariance cannot be repaired");
    }
    let _ = s0;
    (mean, cov)
}

/// NIW complete-data log marginal of a weighted block (standard conjugate
/// result with the weighted count s0 in place of n).
fn niw_log_marginal(
    stats: &[f64],
    d: usize,
    mean0: &[f64],
    scatter0: &[f64],
    kappa0: f64,
    nu0: f64,
    min_sigma: f64,
) -> f64 {
    let (s0, _, mut sn, kappa_n, nu_n) = niw_posterior(stats, d, mean0, scatter0, kappa0, nu0);
    if s0 <= 0.0 {
        return 0.0;
    }
    let df = d as f64;
    let chol_s0 = crate::linalg::cholesky(scatter0, d)
        // lint:allow(unwrap): prior scatter is positive definite by construction
        .expect("prior scatter is positive definite");
    let log_det_s0 = crate::linalg::log_det_from_chol(&chol_s0, d);
    let jitter = (min_sigma * min_sigma).max(1e-12);
    let mut tries = 0;
    let chol_sn = loop {
        match crate::linalg::cholesky(&sn, d) {
            Some(l) => break l,
            None => {
                for i in 0..d {
                    sn[i * d + i] += jitter * (1 << tries) as f64;
                }
                tries += 1;
                assert!(tries < 64, "posterior scatter cannot be repaired");
            }
        }
    };
    let log_det_sn = crate::linalg::log_det_from_chol(&chol_sn, d);
    -0.5 * s0 * df * std::f64::consts::PI.ln() + crate::linalg::ln_multigamma(d, 0.5 * nu_n)
        - crate::linalg::ln_multigamma(d, 0.5 * nu0)
        + 0.5 * nu0 * log_det_s0
        - 0.5 * nu_n * log_det_sn
        + 0.5 * df * (kappa0.ln() - kappa_n.ln())
}

/// MAP of a Gaussian with NIG prior given weighted stats `[s0, s1, s2]`.
#[allow(clippy::too_many_arguments)]
fn nig_map(
    s0: f64,
    s1: f64,
    s2: f64,
    mean0: f64,
    var0: f64,
    kappa0: f64,
    nu0: f64,
    min_sigma: f64,
) -> (f64, f64) {
    let kappa_n = kappa0 + s0;
    let mean = (kappa0 * mean0 + s1) / kappa_n;
    // Scatter around the posterior mean plus the prior pull.
    let ss = (s2 - 2.0 * mean * s1 + mean * mean * s0).max(0.0);
    let var = (nu0 * var0 + ss + kappa0 * (mean - mean0).powi(2)) / (nu0 + s0);
    let sigma = var.sqrt().max(min_sigma);
    (mean, sigma)
}

/// Log NIG density at (mean, var): `Normal(mean | mean0, var/kappa0) ×
/// InvGamma(var | nu0/2, nu0·var0/2)`.
fn nig_log_density(mean: f64, var: f64, mean0: f64, var0: f64, kappa0: f64, nu0: f64) -> f64 {
    let a = 0.5 * nu0;
    let b = 0.5 * nu0 * var0;
    let log_normal =
        -0.5 * LN_2PI - 0.5 * (var / kappa0).ln() - 0.5 * kappa0 * (mean - mean0).powi(2) / var;
    let log_invgamma = a * b.ln() - ln_gamma(a) - (a + 1.0) * var.ln() - b / var;
    log_normal + log_invgamma
}

/// Complete-data log marginal of weighted Gaussian data under the NIG
/// prior (standard conjugate result, with the weighted count `s0` playing
/// the role of n).
fn nig_log_marginal(
    s0: f64,
    s1: f64,
    s2: f64,
    mean0: f64,
    var0: f64,
    kappa0: f64,
    nu0: f64,
) -> f64 {
    if s0 <= 0.0 {
        return 0.0; // no data: marginal of the empty set is 1
    }
    let a0 = 0.5 * nu0;
    let b0 = 0.5 * nu0 * var0;
    let kappa_n = kappa0 + s0;
    let a_n = a0 + 0.5 * s0;
    let xbar = s1 / s0;
    let scatter = (s2 - s1 * s1 / s0).max(0.0);
    let b_n = b0 + 0.5 * scatter + 0.5 * kappa0 * s0 * (xbar - mean0).powi(2) / kappa_n;
    ln_gamma(a_n) - ln_gamma(a0) + a0 * b0.ln() - a_n * b_n.ln()
        + 0.5 * (kappa0.ln() - kappa_n.ln())
        - 0.5 * s0 * LN_2PI
}

/// MAP parameters of one term for one class.
#[derive(Debug, Clone, PartialEq)]
pub enum TermParams {
    /// Gaussian: `log_norm` caches `−ln σ − ½ln 2π`.
    Normal {
        /// Class-conditional mean.
        mean: f64,
        /// Class-conditional standard deviation (≥ the term's floor).
        sigma: f64,
        /// Cached log normalization constant.
        log_norm: f64,
    },
    /// Gaussian on ln(x) with the −ln x Jacobian applied per value.
    LogNormal {
        /// Class-conditional mean of ln(x).
        mean: f64,
        /// Class-conditional std-dev of ln(x).
        sigma: f64,
        /// Cached log normalization constant.
        log_norm: f64,
    },
    /// Multinomial: cached log level probabilities.
    Multinomial {
        /// `log_p[l]` = ln q_l; all finite by the Dirichlet smoothing.
        log_p: Vec<f64>,
    },
    /// Correlated Gaussian block: mean vector plus the lower-triangular
    /// Cholesky factor of the covariance (dense row-major d×d).
    MultiNormal {
        /// Class-conditional mean, length d.
        mean: Vec<f64>,
        /// Cholesky factor L with L·Lᵀ = Σ.
        chol: Vec<f64>,
        /// Cached `−(d/2)·ln 2π − ½·ln det Σ`.
        log_norm: f64,
    },
}

impl TermParams {
    /// Correlated Gaussian parameters from a dense covariance matrix,
    /// with the normalization constant precomputed.
    ///
    /// # Panics
    /// Panics if the covariance is not positive definite even after the
    /// caller's flooring (a programming error in the M-step).
    pub fn multi_normal(mean: Vec<f64>, cov: &[f64], _min_sigma: f64) -> Self {
        let d = mean.len();
        let chol = crate::linalg::cholesky(cov, d)
            // lint:allow(unwrap): covariance is floored to positive definite upstream
            .expect("covariance must be positive definite");
        let log_det = crate::linalg::log_det_from_chol(&chol, d);
        let log_norm = -0.5 * d as f64 * LN_2PI - 0.5 * log_det;
        TermParams::MultiNormal { mean, chol, log_norm }
    }

    /// Rebuild a correlated Gaussian from its flat `[mean, chol]` block.
    fn multi_normal_from_flat(d: usize, flat: &[f64]) -> Self {
        let mean = flat[..d].to_vec();
        let chol = flat[d..].to_vec();
        debug_assert_eq!(chol.len(), d * d);
        let log_det = crate::linalg::log_det_from_chol(&chol, d);
        let log_norm = -0.5 * d as f64 * LN_2PI - 0.5 * log_det;
        TermParams::MultiNormal { mean, chol, log_norm }
    }

    /// Log density of one d-vector under a correlated Gaussian block.
    /// Any NaN component marks the whole block missing (contributes 0).
    pub fn log_prob_vec(&self, x: &[f64]) -> f64 {
        match self {
            TermParams::MultiNormal { mean, chol, log_norm } => {
                let d = mean.len();
                debug_assert_eq!(x.len(), d);
                if x.iter().any(|v| v.is_nan()) {
                    return 0.0;
                }
                let diff: Vec<f64> = x.iter().zip(mean).map(|(a, b)| a - b).collect();
                let mut scratch = vec![0.0; d];
                log_norm - 0.5 * crate::linalg::mahalanobis_sq(chol, d, &diff, &mut scratch)
            }
            _ => panic!("log_prob_vec on a non-MultiNormal term"),
        }
    }

    /// Add the correlated block's log densities for whole columns into
    /// `out` (`cols[a][i]` is attribute `a` of item `i`).
    pub fn accumulate_log_prob_mvn(&self, cols: &[&[f64]], out: &mut [f64]) {
        match self {
            TermParams::MultiNormal { mean, chol, log_norm } => {
                let d = mean.len();
                assert_eq!(cols.len(), d, "column count must match block dimension");
                let n = out.len();
                debug_assert!(cols.iter().all(|c| c.len() == n));
                let mut diff = vec![0.0; d];
                let mut scratch = vec![0.0; d];
                'items: for (i, o) in out.iter_mut().enumerate() {
                    for (a, col) in cols.iter().enumerate() {
                        let x = col[i];
                        if x.is_nan() {
                            continue 'items;
                        }
                        diff[a] = x - mean[a];
                    }
                    *o += log_norm
                        - 0.5 * crate::linalg::mahalanobis_sq(chol, d, &diff, &mut scratch);
                }
            }
            _ => panic!("accumulate_log_prob_mvn on a non-MultiNormal term"),
        }
    }

    /// Allocation-free variant of [`accumulate_log_prob_mvn`] for the
    /// blocked E-step: `xs` is an attribute-major flat gather of the block
    /// columns (`xs[a * n + i]` is attribute `a` of item `i`, with
    /// `n = out.len()`), and the two workspaces are caller-owned so the
    /// steady state performs no heap allocation. Arithmetic is element-wise
    /// identical to the slice-of-columns variant.
    ///
    /// [`accumulate_log_prob_mvn`]: TermParams::accumulate_log_prob_mvn
    pub fn accumulate_log_prob_mvn_flat(
        &self,
        xs: &[f64],
        out: &mut [f64],
        diff: &mut Vec<f64>,
        scratch: &mut Vec<f64>,
    ) {
        match self {
            TermParams::MultiNormal { mean, chol, log_norm } => {
                let d = mean.len();
                let n = out.len();
                assert_eq!(xs.len(), d * n, "flat gather must be d × n attribute-major");
                diff.clear();
                diff.resize(d, 0.0);
                scratch.clear();
                scratch.resize(d, 0.0);
                'items: for (i, o) in out.iter_mut().enumerate() {
                    for (a, dst) in diff.iter_mut().enumerate() {
                        let x = xs[a * n + i];
                        if x.is_nan() {
                            continue 'items;
                        }
                        *dst = x - mean[a];
                    }
                    *o += log_norm - 0.5 * crate::linalg::mahalanobis_sq(chol, d, diff, scratch);
                }
            }
            _ => panic!("accumulate_log_prob_mvn_flat on a non-MultiNormal term"),
        }
    }
}

impl TermParams {
    /// Gaussian parameters with the normalization constant precomputed.
    pub fn normal(mean: f64, sigma: f64) -> Self {
        TermParams::Normal { mean, sigma, log_norm: -sigma.ln() - 0.5 * LN_2PI }
    }

    /// Log-normal parameters with the normalization constant precomputed.
    pub fn log_normal(mean: f64, sigma: f64) -> Self {
        TermParams::LogNormal { mean, sigma, log_norm: -sigma.ln() - 0.5 * LN_2PI }
    }

    /// Log density of one real value (NaN = missing contributes 0).
    pub fn log_prob_real(&self, x: f64) -> f64 {
        match self {
            TermParams::Normal { mean, sigma, log_norm } => {
                if x.is_nan() {
                    return 0.0;
                }
                let z = (x - mean) / sigma;
                log_norm - 0.5 * z * z
            }
            TermParams::LogNormal { mean, sigma, log_norm } => {
                if x.is_nan() {
                    return 0.0;
                }
                let lx = x.ln();
                let z = (lx - mean) / sigma;
                log_norm - 0.5 * z * z - lx
            }
            _ => panic!("scalar real value for a non-scalar term"),
        }
    }

    /// Log probability of one discrete level (MISSING contributes 0).
    pub fn log_prob_discrete(&self, l: u32) -> f64 {
        match self {
            TermParams::Multinomial { log_p } => {
                if l == crate::data::dataset::MISSING_DISCRETE {
                    0.0
                } else {
                    log_p[l as usize]
                }
            }
            _ => panic!("discrete value for real term"),
        }
    }

    /// Add this term's log densities for a whole column into `out`
    /// (the hot kernel of `update_wts`; one call per class × attribute).
    pub fn accumulate_log_prob_real(&self, xs: &[f64], out: &mut [f64]) {
        debug_assert_eq!(xs.len(), out.len());
        match self {
            TermParams::Normal { mean, sigma, log_norm } => {
                let inv = 1.0 / sigma;
                for (x, o) in xs.iter().zip(out.iter_mut()) {
                    if !x.is_nan() {
                        let z = (x - mean) * inv;
                        *o += log_norm - 0.5 * z * z;
                    }
                }
            }
            TermParams::LogNormal { mean, sigma, log_norm } => {
                let inv = 1.0 / sigma;
                for (x, o) in xs.iter().zip(out.iter_mut()) {
                    if !x.is_nan() {
                        let lx = x.ln();
                        let z = (lx - mean) * inv;
                        *o += log_norm - 0.5 * z * z - lx;
                    }
                }
            }
            _ => panic!("real column for a non-scalar-real term"),
        }
    }

    /// Like [`TermParams::log_prob_discrete`], but for a term whose last
    /// slot models the missing level: MISSING maps to that slot instead
    /// of contributing 0.
    pub fn log_prob_discrete_with_missing(&self, l: u32) -> f64 {
        match self {
            TermParams::Multinomial { log_p } => {
                if l == crate::data::dataset::MISSING_DISCRETE {
                    // lint:allow(unwrap): multinomial terms always carry a missing slot
                    *log_p.last().expect("missing-level term has slots")
                } else {
                    log_p[l as usize]
                }
            }
            _ => panic!("discrete value for real term"),
        }
    }

    /// Batched form of [`TermParams::log_prob_discrete_with_missing`].
    pub fn accumulate_log_prob_discrete_with_missing(&self, ls: &[u32], out: &mut [f64]) {
        debug_assert_eq!(ls.len(), out.len());
        match self {
            TermParams::Multinomial { log_p } => {
                // lint:allow(unwrap): multinomial terms always carry a missing slot
                let missing = *log_p.last().expect("missing-level term has slots");
                for (l, o) in ls.iter().zip(out.iter_mut()) {
                    *o += if *l == crate::data::dataset::MISSING_DISCRETE {
                        missing
                    } else {
                        log_p[*l as usize]
                    };
                }
            }
            _ => panic!("discrete column for real term"),
        }
    }

    /// Add this term's log probabilities for a discrete column into `out`.
    pub fn accumulate_log_prob_discrete(&self, ls: &[u32], out: &mut [f64]) {
        debug_assert_eq!(ls.len(), out.len());
        match self {
            TermParams::Multinomial { log_p } => {
                for (l, o) in ls.iter().zip(out.iter_mut()) {
                    if *l != crate::data::dataset::MISSING_DISCRETE {
                        *o += log_p[*l as usize];
                    }
                }
            }
            _ => panic!("discrete column for real term"),
        }
    }

    /// Flatten to f64s (for broadcasting initial parameters in
    /// P-AutoClass). Paired with [`TermPrior::param_len`] and
    /// [`TermPrior::unflatten_params`].
    pub fn to_flat(&self, out: &mut Vec<f64>) {
        match self {
            TermParams::Normal { mean, sigma, .. } | TermParams::LogNormal { mean, sigma, .. } => {
                out.push(*mean);
                out.push(*sigma);
            }
            TermParams::Multinomial { log_p } => out.extend_from_slice(log_p),
            TermParams::MultiNormal { mean, chol, .. } => {
                out.extend_from_slice(mean);
                out.extend_from_slice(chol);
            }
        }
    }
}

impl TermPrior {
    /// Number of f64s in this term's flattened parameter block.
    pub fn param_len(&self) -> usize {
        match self {
            TermPrior::Normal { .. } | TermPrior::LogNormal { .. } => 2,
            TermPrior::Multinomial { levels, missing_level, .. } => {
                levels + usize::from(*missing_level)
            }
            TermPrior::MultiNormal { dim, .. } => dim + dim * dim,
        }
    }

    /// Rebuild parameters from a flat block (inverse of
    /// [`TermParams::to_flat`]).
    pub fn unflatten_params(&self, flat: &[f64]) -> TermParams {
        debug_assert_eq!(flat.len(), self.param_len());
        match self {
            TermPrior::Normal { .. } => TermParams::normal(flat[0], flat[1]),
            TermPrior::LogNormal { .. } => TermParams::log_normal(flat[0], flat[1]),
            TermPrior::Multinomial { .. } => TermParams::Multinomial { log_p: flat.to_vec() },
            TermPrior::MultiNormal { dim, .. } => TermParams::multi_normal_from_flat(*dim, flat),
        }
    }

    /// In-place variant of [`unflatten_params`] for the allocation-free
    /// broadcast path: a multinomial term of matching shape refills its
    /// existing `log_p` vector; everything else rebuilds (Normal/LogNormal
    /// construction is heap-free already; correlated Gaussian blocks build
    /// a fresh Cholesky factor, exactly as in [`map_params_into`]).
    ///
    /// [`unflatten_params`]: TermPrior::unflatten_params
    /// [`map_params_into`]: TermPrior::map_params_into
    pub fn unflatten_params_into(&self, flat: &[f64], out: &mut TermParams) {
        debug_assert_eq!(flat.len(), self.param_len());
        match (self, &mut *out) {
            (TermPrior::Multinomial { .. }, TermParams::Multinomial { log_p })
                if log_p.len() == flat.len() =>
            {
                log_p.copy_from_slice(flat);
            }
            _ => *out = self.unflatten_params(flat),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_prior() -> TermPrior {
        TermPrior::Normal { mean0: 0.0, var0: 1.0, kappa0: 1.0, nu0: 1.0, min_sigma: 0.01 }
    }

    #[test]
    fn normal_map_shrinks_toward_prior() {
        let p = normal_prior();
        // 4 points at x=10 with total weight 4.
        let params = p.map_params(&[4.0, 40.0, 400.0]);
        match params {
            TermParams::Normal { mean, sigma, .. } => {
                // Posterior mean = (0*1 + 40)/5 = 8: pulled toward 0.
                assert!((mean - 8.0).abs() < 1e-12, "{mean}");
                assert!(sigma > 0.01);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn normal_map_with_no_data_is_prior() {
        let p = normal_prior();
        match p.map_params(&[0.0, 0.0, 0.0]) {
            TermParams::Normal { mean, sigma, .. } => {
                assert_eq!(mean, 0.0);
                assert!((sigma - 1.0).abs() < 1e-12);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn sigma_is_floored_at_measurement_error() {
        let p =
            TermPrior::Normal { mean0: 0.0, var0: 1e-12, kappa0: 1.0, nu0: 1.0, min_sigma: 0.5 };
        // Tight cluster at 0: raw sigma would be ~0.
        match p.map_params(&[100.0, 0.0, 0.0]) {
            TermParams::Normal { sigma, .. } => assert_eq!(sigma, 0.5),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn multinomial_map_is_smoothed() {
        let p = TermPrior::Multinomial { levels: 2, alpha: 0.5, missing_level: false };
        match p.map_params(&[3.0, 0.0]) {
            TermParams::Multinomial { log_p } => {
                let q0 = log_p[0].exp();
                let q1 = log_p[1].exp();
                assert!((q0 - 3.5 / 4.0).abs() < 1e-12);
                assert!((q1 - 0.5 / 4.0).abs() < 1e-12);
                assert!((q0 + q1 - 1.0).abs() < 1e-12);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn normal_log_prob_is_gaussian() {
        let t = TermParams::normal(1.0, 2.0);
        let lp = t.log_prob_real(1.0);
        // Density at the mean: -ln σ - 0.5 ln 2π
        assert!((lp - (-(2.0f64).ln() - 0.5 * LN_2PI)).abs() < 1e-12);
        assert!(t.log_prob_real(3.0) < lp);
        assert_eq!(t.log_prob_real(f64::NAN), 0.0);
    }

    #[test]
    fn log_normal_integrates_jacobian() {
        // LogNormal(0, 1) density at x = 1: ln x = 0, so density is
        // N(0|0,1) / 1.
        let t = TermParams::log_normal(0.0, 1.0);
        let lp = t.log_prob_real(1.0);
        assert!((lp - (-0.5 * LN_2PI)).abs() < 1e-12);
        // Same z-score but larger x has a smaller density (Jacobian).
        let t2 = TermParams::log_normal((10.0f64).ln(), 1.0);
        assert!(t2.log_prob_real(10.0) < lp);
    }

    #[test]
    fn batch_kernels_match_scalar() {
        let t = TermParams::normal(0.5, 1.5);
        let xs = [0.0, 1.0, f64::NAN, -3.0];
        let mut out = vec![0.0; 4];
        t.accumulate_log_prob_real(&xs, &mut out);
        for (x, o) in xs.iter().zip(&out) {
            assert!((o - t.log_prob_real(*x)).abs() < 1e-12);
        }

        let m = TermParams::Multinomial { log_p: vec![(0.25f64).ln(), (0.75f64).ln()] };
        let ls = [0u32, 1, crate::data::dataset::MISSING_DISCRETE, 1];
        let mut out = vec![0.0; 4];
        m.accumulate_log_prob_discrete(&ls, &mut out);
        for (l, o) in ls.iter().zip(&out) {
            assert!((o - m.log_prob_discrete(*l)).abs() < 1e-12);
        }
    }

    #[test]
    fn marginal_prefers_tight_data_given_same_count() {
        let p = normal_prior();
        // Tight around prior mean vs spread far away, same weight.
        let tight = p.log_marginal(&[10.0, 0.0, 0.1]);
        let spread = p.log_marginal(&[10.0, 0.0, 1000.0]);
        assert!(tight > spread);
        assert_eq!(p.log_marginal(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn marginal_is_a_proper_probability_for_multinomial() {
        // For one observation the Dirichlet-multinomial marginal must be
        // the prior predictive: P(level l) = alpha / (L * alpha) = 1/L.
        let p = TermPrior::Multinomial { levels: 4, alpha: 0.25, missing_level: false };
        let m = p.log_marginal(&[1.0, 0.0, 0.0, 0.0]);
        assert!((m - (0.25f64).ln()).abs() < 1e-10, "{m}");
    }

    #[test]
    fn nig_marginal_is_prior_predictive_for_one_point() {
        // One observation x under NIG(μ0=0, κ0=1, ν0=1, σ0²=1) has the
        // Student-t(ν0) predictive with scale sqrt((1+1/κ0)·σ0²)=sqrt(2).
        let m = nig_log_marginal(1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0);
        // t_1 (Cauchy) with scale sqrt(2) at x=0: ln(1/(π·sqrt(2))).
        let expect = (1.0 / (std::f64::consts::PI * 2.0f64.sqrt())).ln();
        assert!((m - expect).abs() < 1e-10, "{m} vs {expect}");
    }

    #[test]
    fn param_flatten_round_trip() {
        for (prior, params) in [
            (normal_prior(), TermParams::normal(1.5, 2.5)),
            (
                TermPrior::LogNormal {
                    mean0: 0.0,
                    var0: 1.0,
                    kappa0: 1.0,
                    nu0: 1.0,
                    min_sigma: 0.1,
                },
                TermParams::log_normal(-1.0, 0.5),
            ),
            (
                TermPrior::Multinomial { levels: 3, alpha: 1.0 / 3.0, missing_level: false },
                TermParams::Multinomial { log_p: vec![-1.0, -2.0, -0.5] },
            ),
        ] {
            let mut flat = Vec::new();
            params.to_flat(&mut flat);
            assert_eq!(flat.len(), prior.param_len());
            let back = prior.unflatten_params(&flat);
            assert_eq!(back, params);
        }
    }

    #[test]
    fn log_param_prior_is_finite() {
        let p = normal_prior();
        let params = p.map_params(&[10.0, 5.0, 30.0]);
        assert!(p.log_param_prior(&params).is_finite());

        let m = TermPrior::Multinomial { levels: 3, alpha: 1.0 / 3.0, missing_level: false };
        let params = m.map_params(&[1.0, 2.0, 3.0]);
        assert!(m.log_param_prior(&params).is_finite());
    }
}
