//! Weighted sufficient statistics: the quantities P-AutoClass exchanges.
//!
//! Per class the statistics are laid out flat as
//! `[w_j, attr0 block, attr1 block, ...]`, and per classification as `J`
//! consecutive class blocks. This flat layout is exactly what goes into
//! the Allreduce in the parallel `update_parameters`: partial statistics
//! computed on each processor's partition sum element-wise to the global
//! statistics.

use crate::data::dataset::DataView;
use crate::model::class::Model;
use crate::model::estep::WtsMatrix;
use crate::model::prior::TermPrior;

/// Index arithmetic for the flat statistics vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatLayout {
    /// Number of classes J.
    pub j: usize,
    /// Per-attribute (offset within a class block, block length).
    pub attr_blocks: Vec<(usize, usize)>,
    /// Length of one class block (1 + Σ attr lengths).
    pub stride: usize,
}

impl StatLayout {
    /// Layout for `j` classes of the given model (one block per term
    /// group).
    pub fn new(model: &Model, j: usize) -> Self {
        assert!(j >= 1, "need at least one class");
        let mut attr_blocks = Vec::with_capacity(model.groups.len());
        let mut offset = 1; // slot 0 is the class weight
        for g in &model.groups {
            let len = g.prior.stat_len();
            attr_blocks.push((offset, len));
            offset += len;
        }
        StatLayout { j, attr_blocks, stride: offset }
    }

    /// Total flat length (`j * stride`).
    pub fn len(&self) -> usize {
        self.j * self.stride
    }

    /// True when the layout is empty (never: `j ≥ 1`, stride ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat range of class `c`'s whole block.
    pub fn class_range(&self, c: usize) -> std::ops::Range<usize> {
        let start = c * self.stride;
        start..start + self.stride
    }

    /// Flat index of class `c`'s weight.
    pub fn weight_index(&self, c: usize) -> usize {
        c * self.stride
    }

    /// Flat range of class `c`, attribute `k`'s statistics block.
    pub fn attr_range(&self, c: usize, k: usize) -> std::ops::Range<usize> {
        let (off, len) = self.attr_blocks[k];
        let start = c * self.stride + off;
        start..start + len
    }
}

/// Carry slots per class for tiled accumulation: the running class-weight
/// sum plus an `(s0, s1, s2)` triple per scalar real (Normal/LogNormal)
/// group. Multinomial and MultiNormal groups need no carry — their untiled
/// accumulation already writes per item straight into the flat block.
fn carry_stride(model: &Model) -> usize {
    let scalar_groups = model
        .groups
        .iter()
        .filter(|g| matches!(g.prior, TermPrior::Normal { .. } | TermPrior::LogNormal { .. }))
        .count();
    1 + 3 * scalar_groups
}

/// Flat weighted sufficient statistics for one classification.
#[derive(Debug, Clone, PartialEq)]
pub struct SuffStats {
    /// Index arithmetic.
    pub layout: StatLayout,
    /// The flat values; element-wise summable across partitions.
    pub data: Vec<f64>,
}

impl SuffStats {
    /// Zeroed statistics with the given layout.
    pub fn zeros(layout: StatLayout) -> Self {
        let data = vec![0.0; layout.len()];
        SuffStats { layout, data }
    }

    /// Class `c`'s accumulated weight w_c.
    pub fn class_weight(&self, c: usize) -> f64 {
        self.data[self.layout.weight_index(c)]
    }

    /// Class `c`, attribute `k`'s statistics block.
    pub fn attr_stats(&self, c: usize, k: usize) -> &[f64] {
        &self.data[self.layout.attr_range(c, k)]
    }

    /// Accumulate this partition's weighted statistics (the local part of
    /// `update_parameters`). Returns the number of abstract ops performed,
    /// for the virtual-time model.
    pub fn accumulate(&mut self, model: &Model, view: &DataView<'_>, wts: &WtsMatrix) -> u64 {
        let n = view.len();
        assert_eq!(wts.n_items(), n, "weights/partition size mismatch");
        assert_eq!(wts.n_classes(), self.layout.j, "weights/layout class count mismatch");
        let mut ops: u64 = 0;
        for c in 0..self.layout.j {
            let w = wts.class_column(c);
            // Class weight w_c over this partition.
            let wsum: f64 = w.iter().sum();
            self.data[self.layout.weight_index(c)] += wsum;
            ops += n as u64;
            for (k, group) in model.groups.iter().enumerate() {
                let range = self.layout.attr_range(c, k);
                let block = &mut self.data[range];
                match &group.prior {
                    TermPrior::Normal { .. } => {
                        let xs = view.real_column(group.attrs[0]);
                        let (mut s0, mut s1, mut s2) = (0.0, 0.0, 0.0);
                        for (&x, &wi) in xs.iter().zip(w) {
                            if !x.is_nan() {
                                s0 += wi;
                                s1 += wi * x;
                                s2 += wi * x * x;
                            }
                        }
                        block[0] += s0;
                        block[1] += s1;
                        block[2] += s2;
                        ops += n as u64;
                    }
                    TermPrior::LogNormal { .. } => {
                        let xs = view.real_column(group.attrs[0]);
                        let (mut s0, mut s1, mut s2) = (0.0, 0.0, 0.0);
                        for (&x, &wi) in xs.iter().zip(w) {
                            if !x.is_nan() {
                                let lx = x.ln();
                                s0 += wi;
                                s1 += wi * lx;
                                s2 += wi * lx * lx;
                            }
                        }
                        block[0] += s0;
                        block[1] += s1;
                        block[2] += s2;
                        ops += n as u64;
                    }
                    TermPrior::Multinomial { missing_level, .. } => {
                        let ls = view.discrete_column(group.attrs[0]);
                        let missing_slot = block.len() - 1;
                        for (&l, &wi) in ls.iter().zip(w) {
                            if l != crate::data::dataset::MISSING_DISCRETE {
                                block[l as usize] += wi;
                            } else if *missing_level {
                                block[missing_slot] += wi;
                            }
                        }
                        ops += n as u64;
                    }
                    TermPrior::MultiNormal { dim, .. } => {
                        // Joint block: skip items missing *any* block
                        // value. Allocation-free: the columns are indexed
                        // through the view directly (d is small, the
                        // repeated column lookups are trivial next to the
                        // d² products), in the same item order and with the
                        // same products as before — bitwise identical.
                        let d = *dim;
                        'items: for (i, &wi) in w.iter().enumerate() {
                            for &attr in &group.attrs {
                                if view.real_column(attr)[i].is_nan() {
                                    continue 'items;
                                }
                            }
                            block[0] += wi;
                            for a in 0..d {
                                let xa = view.real_column(group.attrs[a])[i];
                                block[1 + a] += wi * xa;
                                for b in 0..=a {
                                    let xb = view.real_column(group.attrs[b])[i];
                                    block[1 + d + crate::model::prior::tri_index(a, b)] +=
                                        wi * xa * xb;
                                }
                            }
                        }
                        ops += (n * d) as u64;
                    }
                }
            }
        }
        ops
    }

    /// Length of the carry buffer threaded through
    /// [`SuffStats::accumulate_tile`]: per class, the running class-weight
    /// sum plus one `(s0, s1, s2)` triple per scalar real group.
    pub fn carry_len(&self, model: &Model) -> usize {
        self.layout.j * carry_stride(model)
    }

    /// Accumulate the items `[lo, hi)` of this partition, carrying the
    /// scalar accumulation chains across tiles.
    ///
    /// Calling this for a partition's tiles in ascending item order and
    /// then flushing with [`SuffStats::finish_tiles`] is **bitwise
    /// identical** to one [`SuffStats::accumulate`] over the whole
    /// partition: every scalar accumulator (the class weight sum and each
    /// Normal/LogNormal `(s0, s1, s2)`) continues its exact left-fold
    /// chain through `carry` instead of restarting per tile, and the
    /// per-item block writes (Multinomial, MultiNormal) hit `data` in the
    /// same item order either way. `carry` must be zeroed to
    /// [`SuffStats::carry_len`] before the first tile. Returns abstract
    /// ops, summing over a partition's tiles to exactly the untiled count.
    pub fn accumulate_tile(
        &mut self,
        model: &Model,
        view: &DataView<'_>,
        wts: &WtsMatrix,
        lo: usize,
        hi: usize,
        carry: &mut [f64],
    ) -> u64 {
        let n = view.len();
        assert_eq!(wts.n_items(), n, "weights/partition size mismatch");
        assert_eq!(wts.n_classes(), self.layout.j, "weights/layout class count mismatch");
        assert!(lo <= hi && hi <= n, "tile [{lo}, {hi}) out of range for {n} items");
        let cstride = carry_stride(model);
        assert_eq!(carry.len(), self.layout.j * cstride, "carry buffer length mismatch");
        let tl = hi - lo;
        let mut ops: u64 = 0;
        for c in 0..self.layout.j {
            let w = &wts.class_column(c)[lo..hi];
            let cbase = c * cstride;
            // Continue the class-weight left fold exactly where the
            // previous tile left it.
            let mut wsum = carry[cbase];
            for &wi in w {
                wsum += wi;
            }
            carry[cbase] = wsum;
            ops += tl as u64;
            let mut coff = cbase + 1;
            for (k, group) in model.groups.iter().enumerate() {
                let range = self.layout.attr_range(c, k);
                let block = &mut self.data[range];
                match &group.prior {
                    TermPrior::Normal { .. } => {
                        let xs = &view.real_column(group.attrs[0])[lo..hi];
                        let (mut s0, mut s1, mut s2) =
                            (carry[coff], carry[coff + 1], carry[coff + 2]);
                        for (&x, &wi) in xs.iter().zip(w) {
                            if !x.is_nan() {
                                s0 += wi;
                                s1 += wi * x;
                                s2 += wi * x * x;
                            }
                        }
                        (carry[coff], carry[coff + 1], carry[coff + 2]) = (s0, s1, s2);
                        coff += 3;
                        ops += tl as u64;
                    }
                    TermPrior::LogNormal { .. } => {
                        let xs = &view.real_column(group.attrs[0])[lo..hi];
                        let (mut s0, mut s1, mut s2) =
                            (carry[coff], carry[coff + 1], carry[coff + 2]);
                        for (&x, &wi) in xs.iter().zip(w) {
                            if !x.is_nan() {
                                let lx = x.ln();
                                s0 += wi;
                                s1 += wi * lx;
                                s2 += wi * lx * lx;
                            }
                        }
                        (carry[coff], carry[coff + 1], carry[coff + 2]) = (s0, s1, s2);
                        coff += 3;
                        ops += tl as u64;
                    }
                    TermPrior::Multinomial { missing_level, .. } => {
                        let ls = &view.discrete_column(group.attrs[0])[lo..hi];
                        let missing_slot = block.len() - 1;
                        for (&l, &wi) in ls.iter().zip(w) {
                            if l != crate::data::dataset::MISSING_DISCRETE {
                                block[l as usize] += wi;
                            } else if *missing_level {
                                block[missing_slot] += wi;
                            }
                        }
                        ops += tl as u64;
                    }
                    TermPrior::MultiNormal { dim, .. } => {
                        let d = *dim;
                        'items: for (t, &wi) in w.iter().enumerate() {
                            let i = lo + t;
                            for &attr in &group.attrs {
                                if view.real_column(attr)[i].is_nan() {
                                    continue 'items;
                                }
                            }
                            block[0] += wi;
                            for a in 0..d {
                                let xa = view.real_column(group.attrs[a])[i];
                                block[1 + a] += wi * xa;
                                for b in 0..=a {
                                    let xb = view.real_column(group.attrs[b])[i];
                                    block[1 + d + crate::model::prior::tri_index(a, b)] +=
                                        wi * xa * xb;
                                }
                            }
                        }
                        ops += (tl * d) as u64;
                    }
                }
            }
        }
        ops
    }

    /// Flush the scalar accumulation chains carried across
    /// [`SuffStats::accumulate_tile`] calls into the flat statistics —
    /// one `+=` per carried accumulator, exactly like the untiled
    /// [`SuffStats::accumulate`]'s single final add.
    pub fn finish_tiles(&mut self, model: &Model, carry: &[f64]) {
        let cstride = carry_stride(model);
        assert_eq!(carry.len(), self.layout.j * cstride, "carry buffer length mismatch");
        for c in 0..self.layout.j {
            let cbase = c * cstride;
            self.data[self.layout.weight_index(c)] += carry[cbase];
            let mut coff = cbase + 1;
            for (k, group) in model.groups.iter().enumerate() {
                if matches!(&group.prior, TermPrior::Normal { .. } | TermPrior::LogNormal { .. }) {
                    let range = self.layout.attr_range(c, k);
                    let block = &mut self.data[range];
                    block[0] += carry[coff];
                    block[1] += carry[coff + 1];
                    block[2] += carry[coff + 2];
                    coff += 3;
                }
            }
        }
    }

    /// Element-wise merge of another partition's statistics (what the
    /// Allreduce computes).
    pub fn merge(&mut self, other: &SuffStats) {
        assert_eq!(self.layout, other.layout, "cannot merge different layouts");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Total weight across classes (should equal the number of items whose
    /// weights were accumulated; each item contributes exactly 1).
    pub fn total_weight(&self) -> f64 {
        (0..self.layout.j).map(|c| self.class_weight(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::{Attribute, Schema};
    use crate::data::stats::GlobalStats;

    fn setup() -> (Dataset, Model) {
        let schema = Schema::new(vec![Attribute::real("x", 0.1), Attribute::discrete("c", 2)]);
        let data = Dataset::from_rows(
            schema.clone(),
            &[
                vec![Value::Real(1.0), Value::Discrete(0)],
                vec![Value::Real(2.0), Value::Discrete(1)],
                vec![Value::Missing, Value::Discrete(1)],
                vec![Value::Real(4.0), Value::Missing],
            ],
        );
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(schema, &stats);
        (data, model)
    }

    fn uniform_wts(n: usize, j: usize) -> WtsMatrix {
        let mut w = WtsMatrix::new(n, j);
        let u = 1.0 / j as f64;
        for c in 0..j {
            w.class_column_mut(c).iter_mut().for_each(|v| *v = u);
        }
        w
    }

    #[test]
    fn layout_indexing() {
        let (_, model) = setup();
        let l = StatLayout::new(&model, 3);
        // stride = 1 (weight) + 3 (normal) + 2 (multinomial)
        assert_eq!(l.stride, 6);
        assert_eq!(l.len(), 18);
        assert_eq!(l.weight_index(2), 12);
        assert_eq!(l.attr_range(1, 0), 7..10);
        assert_eq!(l.attr_range(1, 1), 10..12);
    }

    #[test]
    fn accumulate_counts_weighted_values() {
        let (data, model) = setup();
        let wts = uniform_wts(4, 2);
        let mut s = SuffStats::zeros(StatLayout::new(&model, 2));
        s.accumulate(&model, &data.full_view(), &wts);
        // Each class got half of each item.
        assert!((s.class_weight(0) - 2.0).abs() < 1e-12);
        assert!((s.class_weight(1) - 2.0).abs() < 1e-12);
        let b = s.attr_stats(0, 0);
        // Non-missing x: {1,2,4} each with weight 0.5.
        assert!((b[0] - 1.5).abs() < 1e-12);
        assert!((b[1] - 3.5).abs() < 1e-12);
        assert!((b[2] - 10.5).abs() < 1e-12);
        let d = s.attr_stats(0, 1);
        // Levels: one 0, two 1s, one missing; each weight 0.5.
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partition_accumulation_merges_to_whole() {
        let (data, model) = setup();
        let layout = StatLayout::new(&model, 2);

        let wts_full = uniform_wts(4, 2);
        let mut whole = SuffStats::zeros(layout.clone());
        whole.accumulate(&model, &data.full_view(), &wts_full);

        let mut left = SuffStats::zeros(layout.clone());
        left.accumulate(&model, &data.view(0, 2), &uniform_wts(2, 2));
        let mut right = SuffStats::zeros(layout);
        right.accumulate(&model, &data.view(2, 4), &uniform_wts(2, 2));
        left.merge(&right);

        for (a, b) in left.data.iter().zip(&whole.data) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn tiled_accumulation_is_bitwise_identical_to_untiled() {
        let (data, model) = setup();
        let layout = StatLayout::new(&model, 2);
        let view = data.full_view();
        let wts = uniform_wts(4, 2);

        let mut whole = SuffStats::zeros(layout.clone());
        let ops_whole = whole.accumulate(&model, &view, &wts);

        let mut tiled = SuffStats::zeros(layout);
        let mut carry = vec![0.0; tiled.carry_len(&model)];
        let mut ops_tiled = 0;
        for (lo, hi) in [(0, 1), (1, 3), (3, 4)] {
            ops_tiled += tiled.accumulate_tile(&model, &view, &wts, lo, hi, &mut carry);
        }
        tiled.finish_tiles(&model, &carry);

        assert_eq!(ops_whole, ops_tiled, "op counts must match");
        for (i, (a, b)) in whole.data.iter().zip(&tiled.data).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "slot {i}: {a} vs {b}");
        }
    }

    #[test]
    fn total_weight_equals_items() {
        let (data, model) = setup();
        let wts = uniform_wts(4, 2);
        let mut s = SuffStats::zeros(StatLayout::new(&model, 2));
        s.accumulate(&model, &data.full_view(), &wts);
        assert!((s.total_weight() - 4.0).abs() < 1e-12);
    }
}
