//! The Bayesian finite-mixture model: priors, parameters, E/M steps,
//! sufficient statistics, scoring, and initialization.

pub mod approx;
pub mod class;
pub mod estep;
pub mod init;
pub mod mstep;
pub mod prior;
pub mod suffstats;
pub mod workspace;

pub use approx::{converged, evaluate, Approximation};
pub use class::{
    classes_from_flat, classes_from_flat_into, classes_to_flat, ClassParams, Model, TermGroup,
};
pub use estep::{
    estep_ops, update_wts, update_wts_and_stats_into, update_wts_into, update_wts_naive, EStepOut,
    EStepScalars, EStepScratch, WtsMatrix, ESTEP_TILE,
};
pub use init::{derive_seed, init_classes};
pub use mstep::{log_param_prior, stats_to_class_into, stats_to_classes, stats_to_classes_into};
pub use prior::{TermParams, TermPrior};
pub use suffstats::{StatLayout, SuffStats};
pub use workspace::CycleWorkspace;
