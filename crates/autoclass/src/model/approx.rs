//! `update_approximations`: classification scoring and convergence.
//!
//! AutoClass ranks classifications by an approximation to the marginal
//! likelihood P(X|T). We implement the Cheeseman–Stutz (CS) estimate —
//! introduced for AutoClass itself:
//!
//! ```text
//! ln P(X|T) ≈ ln P(X̂|T) + ln P(X|V̂,T) − ln P(X̂|V̂,T)
//! ```
//!
//! where `X̂` is the completed data (items fractionally assigned by their
//! membership weights), `V̂` the MAP parameters. `ln P(X̂|T)` has a closed
//! form because all term priors are conjugate: it decomposes into the
//! Dirichlet-multinomial marginal of the class assignments plus per-class,
//! per-attribute marginals.

use crate::math::ln_gamma;
use crate::model::class::Model;
use crate::model::suffstats::SuffStats;

/// Scores of one classification state at the current cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Approximation {
    /// Incomplete-data log likelihood at MAP, ln P(X|V̂,T).
    pub log_likelihood: f64,
    /// Complete-data log likelihood at MAP, ln P(X̂|V̂,T).
    pub complete_ll: f64,
    /// Complete-data log marginal ln P(X̂|T).
    pub complete_marginal: f64,
    /// The Cheeseman–Stutz marginal-likelihood estimate.
    pub cs_score: f64,
}

/// Closed-form complete-data log marginal of the class-assignment part:
/// Dirichlet(1)-multinomial over J classes with fractional counts w_j.
pub fn assignment_log_marginal(class_weights: &[f64], n_total: f64) -> f64 {
    let j = class_weights.len() as f64;
    let mut out = ln_gamma(j) - ln_gamma(n_total + j);
    for &w in class_weights {
        // lnΓ(w + 1): fractional counts are fine for Γ.
        out += ln_gamma(w + 1.0);
    }
    out
}

/// Evaluate the approximation from global statistics and E-step totals.
pub fn evaluate(
    model: &Model,
    stats: &SuffStats,
    log_likelihood: f64,
    complete_ll: f64,
) -> Approximation {
    let j = stats.layout.j;
    // Inline of `assignment_log_marginal` over the class weights straight
    // from the statistics vector — same arithmetic order, no collected Vec
    // (this runs once per EM cycle inside the allocation-free hot loop).
    let mut complete_marginal = ln_gamma(j as f64) - ln_gamma(model.n_total + j as f64);
    for c in 0..j {
        complete_marginal += ln_gamma(stats.class_weight(c) + 1.0);
    }
    for c in 0..j {
        for (k, group) in model.groups.iter().enumerate() {
            complete_marginal += group.prior.log_marginal(stats.attr_stats(c, k));
        }
    }
    // The complete-data likelihood at MAP includes the assignment part
    // Σ_j w_j ln π_j, which `complete_ll` (from the E-step) already carries.
    let cs_score = complete_marginal + log_likelihood - complete_ll;
    Approximation { log_likelihood, complete_ll, complete_marginal, cs_score }
}

/// Convergence test on successive log likelihoods: relative change below
/// `rel_eps` (guarding division for tiny magnitudes).
pub fn converged(prev_ll: f64, ll: f64, rel_eps: f64) -> bool {
    if !prev_ll.is_finite() {
        return false;
    }
    let delta = (ll - prev_ll).abs();
    delta <= rel_eps * ll.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::{Attribute, Schema};
    use crate::data::stats::GlobalStats;
    use crate::model::class::ClassParams;
    use crate::model::estep::{update_wts, WtsMatrix};
    use crate::model::mstep::stats_to_classes;
    use crate::model::prior::TermParams;
    use crate::model::suffstats::{StatLayout, SuffStats};

    fn gaussian_pair_data(n_per: usize) -> Dataset {
        let schema = Schema::new(vec![Attribute::real("x", 0.01)]);
        let mut rows = Vec::new();
        for i in 0..n_per {
            // Two well-separated deterministic "clusters".
            let jitter = (i as f64 * 0.37).sin() * 0.3;
            rows.push(vec![Value::Real(-5.0 + jitter)]);
            rows.push(vec![Value::Real(5.0 + jitter)]);
        }
        Dataset::from_rows(schema, &rows)
    }

    fn run_em(data: &Dataset, j: usize, means: &[f64]) -> (Model, SuffStats, f64, f64) {
        let stats_g = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &stats_g);
        let mut classes: Vec<ClassParams> = means
            .iter()
            .map(|&m| {
                ClassParams::new(
                    data.len() as f64 / j as f64,
                    1.0 / j as f64,
                    vec![TermParams::normal(m, 2.0)],
                )
            })
            .collect();
        let mut wts = WtsMatrix::new(0, 0);
        let mut e = update_wts(&model, &data.full_view(), &classes, &mut wts);
        for _ in 0..20 {
            let mut s = SuffStats::zeros(StatLayout::new(&model, j));
            s.accumulate(&model, &data.full_view(), &wts);
            classes = stats_to_classes(&model, &s).0;
            e = update_wts(&model, &data.full_view(), &classes, &mut wts);
        }
        let mut s = SuffStats::zeros(StatLayout::new(&model, j));
        s.accumulate(&model, &data.full_view(), &wts);
        (model, s, e.log_likelihood, e.complete_ll)
    }

    #[test]
    fn assignment_marginal_decreases_with_n() {
        // More data = smaller probability of any particular completion.
        let a = assignment_log_marginal(&[5.0, 5.0], 10.0);
        let b = assignment_log_marginal(&[50.0, 50.0], 100.0);
        assert!(a > b);
    }

    #[test]
    fn cs_score_is_below_likelihood() {
        // The marginal integrates over parameters, so it must be below the
        // maximized likelihood (Occam factor is negative in log space).
        let data = gaussian_pair_data(40);
        let (model, stats, ll, cll) = run_em(&data, 2, &[-4.0, 4.0]);
        let a = evaluate(&model, &stats, ll, cll);
        assert!(a.cs_score < a.log_likelihood, "{} vs {}", a.cs_score, a.log_likelihood);
        assert!(a.cs_score.is_finite());
    }

    #[test]
    fn cs_score_prefers_true_structure_over_overfit() {
        // Two planted clusters: J=2 should beat J=5 on the CS score even
        // if J=5 attains a (slightly) higher raw likelihood.
        let data = gaussian_pair_data(60);
        let (model2, stats2, ll2, cll2) = run_em(&data, 2, &[-4.0, 4.0]);
        let (model5, stats5, ll5, cll5) = run_em(&data, 5, &[-6.0, -4.0, 0.0, 4.0, 6.0]);
        let a2 = evaluate(&model2, &stats2, ll2, cll2);
        let a5 = evaluate(&model5, &stats5, ll5, cll5);
        assert!(a2.cs_score > a5.cs_score, "J=2 {} should beat J=5 {}", a2.cs_score, a5.cs_score);
    }

    #[test]
    fn cs_score_prefers_true_structure_over_underfit() {
        let data = gaussian_pair_data(60);
        let (model2, stats2, ll2, cll2) = run_em(&data, 2, &[-4.0, 4.0]);
        let (model1, stats1, ll1, cll1) = run_em(&data, 1, &[0.0]);
        let a2 = evaluate(&model2, &stats2, ll2, cll2);
        let a1 = evaluate(&model1, &stats1, ll1, cll1);
        assert!(a2.cs_score > a1.cs_score, "J=2 {} should beat J=1 {}", a2.cs_score, a1.cs_score);
    }

    #[test]
    fn convergence_detector() {
        assert!(!converged(f64::NEG_INFINITY, -100.0, 1e-6));
        assert!(converged(-100.0, -100.0, 1e-6));
        assert!(converged(-100.0000001, -100.0, 1e-6));
        assert!(!converged(-120.0, -100.0, 1e-6));
        // Near zero: absolute guard kicks in.
        assert!(converged(1e-9, 0.0, 1e-6));
    }
}
