//! Random initialization of a classification try.
//!
//! AutoClass seeds each try by picking random items as tentative class
//! centers. We do the same for real attributes (falling back to a draw
//! from the global distribution when the picked value is missing) and
//! perturb the global level frequencies for discrete attributes. All
//! randomness flows from the caller's seeded RNG, so a try is reproducible
//! from `(dataset, j, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::dataset::DataView;
use crate::model::class::{ClassParams, Model};
use crate::model::prior::{TermParams, TermPrior};

/// Derive a stream-specific seed from a base seed (splitmix64 step), so
/// independent tries/ranks get decorrelated but reproducible RNGs.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A standard normal draw via Box-Muller (avoids a distributions dep).
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Initialize `j` classes from random items of `view`.
///
/// The view is whichever partition the caller owns — in P-AutoClass rank 0
/// initializes from its partition and broadcasts, so all processors start
/// from identical parameters (preserving the sequential semantics).
pub fn init_classes(model: &Model, view: &DataView<'_>, j: usize, seed: u64) -> Vec<ClassParams> {
    assert!(j >= 1, "need at least one class");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = view.len();
    let weight = model.n_total / j as f64;
    let pi = 1.0 / j as f64;

    (0..j)
        .map(|_| {
            let pick = if n > 0 { rng.gen_range(0..n) } else { 0 };
            let terms = model
                .groups
                .iter()
                .map(|group| init_term(&group.prior, view, &group.attrs, pick, &mut rng))
                .collect();
            ClassParams::new(weight, pi, terms)
        })
        .collect()
}

fn init_term(
    prior: &TermPrior,
    view: &DataView<'_>,
    attrs: &[usize],
    pick: usize,
    rng: &mut StdRng,
) -> TermParams {
    let k = attrs[0];
    match prior {
        TermPrior::Normal { mean0, var0, min_sigma, .. } => {
            let sigma0 = var0.sqrt().max(*min_sigma);
            let x = if view.is_empty() { f64::NAN } else { view.real_column(k)[pick] };
            // Missing picked value: draw a center from the global spread.
            let mean = if x.is_nan() { mean0 + sigma0 * std_normal(rng) } else { x };
            TermParams::normal(mean, sigma0)
        }
        TermPrior::LogNormal { mean0, var0, min_sigma, .. } => {
            let sigma0 = var0.sqrt().max(*min_sigma);
            let x = if view.is_empty() { f64::NAN } else { view.real_column(k)[pick] };
            let mean =
                if x.is_nan() || x <= 0.0 { mean0 + sigma0 * std_normal(rng) } else { x.ln() };
            TermParams::log_normal(mean, sigma0)
        }
        TermPrior::MultiNormal { dim, mean0, scatter0, .. } => {
            // Mean from the picked item's block values (falling back to a
            // prior draw per dimension); covariance starts at the prior
            // diagonal — wide enough to reach every cluster.
            let d = *dim;
            let mut mean = Vec::with_capacity(d);
            for (a, &col) in attrs.iter().enumerate() {
                let sigma0 = scatter0[a * d + a].sqrt();
                let x = if view.is_empty() { f64::NAN } else { view.real_column(col)[pick] };
                mean.push(if x.is_nan() { mean0[a] + sigma0 * std_normal(rng) } else { x });
            }
            TermParams::multi_normal(mean, scatter0, 0.0)
        }
        TermPrior::Multinomial { levels, alpha, missing_level } => {
            // Perturb uniform+smoothing multiplicatively, then favor the
            // picked item's level, then normalize. Keeps all probabilities
            // strictly positive. With the missing-level option the term
            // has one extra slot at the end.
            let slots = levels + usize::from(*missing_level);
            let l_pick = if view.is_empty() {
                crate::data::dataset::MISSING_DISCRETE
            } else {
                view.discrete_column(k)[pick]
            };
            let mut p: Vec<f64> =
                (0..slots).map(|_| (1.0 + alpha) * (0.3 * std_normal(rng)).exp()).collect();
            if l_pick != crate::data::dataset::MISSING_DISCRETE {
                p[l_pick as usize] *= 2.0;
            } else if *missing_level {
                p[slots - 1] *= 2.0;
            }
            let total: f64 = p.iter().sum();
            TermParams::Multinomial { log_p: p.iter().map(|v| (v / total).ln()).collect() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::{Attribute, Schema};
    use crate::data::stats::GlobalStats;

    fn setup() -> (Dataset, Model) {
        let schema = Schema::new(vec![Attribute::real("x", 0.1), Attribute::discrete("c", 3)]);
        let rows: Vec<Vec<Value>> =
            (0..50).map(|i| vec![Value::Real(i as f64), Value::Discrete((i % 3) as u32)]).collect();
        let data = Dataset::from_rows(schema.clone(), &rows);
        let stats = GlobalStats::compute(&data.full_view());
        (data.clone(), Model::new(schema, &stats))
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0));
    }

    #[test]
    fn init_is_reproducible_from_seed() {
        let (data, model) = setup();
        let a = init_classes(&model, &data.full_view(), 4, 7);
        let b = init_classes(&model, &data.full_view(), 4, 7);
        assert_eq!(a, b);
        let c = init_classes(&model, &data.full_view(), 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn init_produces_valid_parameters() {
        let (data, model) = setup();
        for seed in 0..20 {
            let classes = init_classes(&model, &data.full_view(), 5, seed);
            assert_eq!(classes.len(), 5);
            let pi_sum: f64 = classes.iter().map(|c| c.pi).sum();
            assert!((pi_sum - 1.0).abs() < 1e-9);
            for class in &classes {
                match &class.terms[0] {
                    TermParams::Normal { mean, sigma, .. } => {
                        assert!(mean.is_finite());
                        assert!(*sigma > 0.0);
                    }
                    _ => panic!("term 0 should be normal"),
                }
                match &class.terms[1] {
                    TermParams::Multinomial { log_p } => {
                        let s: f64 = log_p.iter().map(|l| l.exp()).sum();
                        assert!((s - 1.0).abs() < 1e-9, "{s}");
                        assert!(log_p.iter().all(|l| l.is_finite()));
                    }
                    _ => panic!("term 1 should be multinomial"),
                }
            }
        }
    }

    #[test]
    fn init_means_come_from_data() {
        let (data, model) = setup();
        let classes = init_classes(&model, &data.full_view(), 8, 123);
        for class in &classes {
            match &class.terms[0] {
                TermParams::Normal { mean, .. } => {
                    // Data values are integers 0..50.
                    assert!(*mean >= 0.0 && *mean < 50.0);
                    assert_eq!(mean.fract(), 0.0);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn empty_view_falls_back_to_prior_draws() {
        let (data, model) = setup();
        let classes = init_classes(&model, &data.view(0, 0), 3, 5);
        assert_eq!(classes.len(), 3);
        for class in &classes {
            match &class.terms[0] {
                TermParams::Normal { mean, sigma, .. } => {
                    assert!(mean.is_finite());
                    assert!(*sigma > 0.0);
                }
                _ => unreachable!(),
            }
        }
    }
}
