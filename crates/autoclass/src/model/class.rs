//! The fixed model structure and per-class parameter sets.

use crate::data::schema::{AttributeKind, Schema};
use crate::data::stats::GlobalStats;
use crate::model::prior::{TermParams, TermPrior};

/// One modeling unit: a term prior over one attribute (the usual case) or
/// over a block of correlated real attributes (`multi_normal_cn`).
#[derive(Debug, Clone, PartialEq)]
pub struct TermGroup {
    /// Schema column indices this term covers, in modeling order.
    pub attrs: Vec<usize>,
    /// The term family and its data-derived prior.
    pub prior: TermPrior,
}

/// The model structure "T" of the Bayesian-classification formulation:
/// the partition of attributes into term groups with data-derived priors,
/// plus the dataset size. Fixed during a classification try; only the
/// number of classes and the continuous parameters "V" vary. AutoClass's
/// *model-level* search compares alternative structures (e.g. independent
/// vs correlated attributes) by their marginal scores — see
/// [`crate::search::compare_structures`].
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Term groups; together they cover every attribute exactly once.
    pub groups: Vec<TermGroup>,
    /// Total number of items N (global, across all processors).
    pub n_total: f64,
    /// The schema the model was built against.
    pub schema: Schema,
}

impl Model {
    /// Derive the default model structure — every attribute independent —
    /// from a schema and global statistics.
    pub fn new(schema: Schema, stats: &GlobalStats) -> Self {
        let groups = schema
            .attributes
            .iter()
            .enumerate()
            .map(|(c, a)| TermGroup {
                attrs: vec![c],
                prior: TermPrior::for_attribute(a, stats, c),
            })
            .collect();
        Model { groups, n_total: stats.n, schema }
    }

    /// Model structure with the given blocks of real attributes modeled
    /// jointly (full covariance, AutoClass's `multi_normal_cn`); every
    /// attribute not covered by a block gets its default independent term.
    ///
    /// # Panics
    /// Panics if a block is smaller than 2, repeats or overlaps
    /// attributes, references out-of-range columns, or includes a
    /// non-`Real` attribute (log-normal and discrete attributes cannot
    /// join a covariance block).
    pub fn with_correlated(schema: Schema, stats: &GlobalStats, blocks: &[Vec<usize>]) -> Self {
        let k = schema.len();
        let mut owner: Vec<Option<usize>> = vec![None; k];
        for (b, block) in blocks.iter().enumerate() {
            assert!(block.len() >= 2, "correlated block {b} needs at least 2 attributes");
            for &a in block {
                assert!(a < k, "block {b}: attribute {a} out of range");
                assert!(
                    matches!(schema.attributes[a].kind, AttributeKind::Real { .. }),
                    "block {b}: attribute {a} ({:?}) is not Real",
                    schema.attributes[a].name
                );
                assert!(owner[a].is_none(), "attribute {a} appears in more than one block");
                owner[a] = Some(b);
            }
        }
        let mut groups = Vec::new();
        for block in blocks {
            let mean0 = block.iter().map(|&a| stats.mean(a)).collect();
            let vars0: Vec<f64> = block
                .iter()
                .map(|&a| {
                    let err = match schema.attributes[a].kind {
                        AttributeKind::Real { error } => error,
                        _ => unreachable!("validated above"),
                    };
                    stats.variance(a).max(err * err)
                })
                .collect();
            let min_sigma = block
                .iter()
                .map(|&a| match schema.attributes[a].kind {
                    AttributeKind::Real { error } => error,
                    _ => unreachable!("validated above"),
                })
                .fold(f64::INFINITY, f64::min);
            groups.push(TermGroup {
                attrs: block.clone(),
                prior: TermPrior::multi_normal(mean0, vars0, min_sigma),
            });
        }
        for (c, a) in schema.attributes.iter().enumerate() {
            if owner[c].is_none() {
                groups.push(TermGroup {
                    attrs: vec![c],
                    prior: TermPrior::for_attribute(a, stats, c),
                });
            }
        }
        Model { groups, n_total: stats.n, schema }
    }

    /// Turn on explicit missing-level modeling for the given discrete
    /// attributes (AutoClass's informative-missingness option): each
    /// listed attribute's multinomial term gets an extra level holding
    /// the "missing" outcome, so missingness itself becomes evidence
    /// about class membership (instead of being ignored).
    ///
    /// # Panics
    /// Panics if an index is out of range or not a discrete attribute.
    pub fn with_missing_levels(mut self, attrs: &[usize]) -> Self {
        for &a in attrs {
            assert!(a < self.schema.len(), "attribute {a} out of range");
            let group = self
                .groups
                .iter_mut()
                .find(|g| g.attrs == [a])
                .unwrap_or_else(|| panic!("attribute {a} is not a singleton group"));
            match &mut group.prior {
                TermPrior::Multinomial { levels, alpha, missing_level } => {
                    *missing_level = true;
                    // Keep AutoClass's 1/L smoothing consistent with the
                    // new slot count.
                    *alpha = 1.0 / (*levels + 1) as f64;
                }
                other => panic!("attribute {a} is not discrete: {other:?}"),
            }
        }
        self
    }

    /// Number of attributes K.
    pub fn n_attrs(&self) -> usize {
        self.schema.len()
    }

    /// Number of term groups (equals K for the default structure).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Flattened parameter length of one class (1 for the weight plus the
    /// term parameter blocks) — the unit broadcast to all processors after
    /// initialization in P-AutoClass.
    pub fn class_param_len(&self) -> usize {
        1 + self.groups.iter().map(|g| g.prior.param_len()).sum::<usize>()
    }

    /// MAP mixture proportion for a class with expected count `w` among
    /// `j` classes over `n` items: AutoClass's `(w + 1/J) / (N + 1)`.
    pub fn map_pi(w: f64, n: f64, j: usize) -> f64 {
        (w + 1.0 / j as f64) / (n + 1.0)
    }
}

/// MAP parameters of one class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassParams {
    /// Expected item count w_j = Σ_i w_ij.
    pub weight: f64,
    /// MAP mixture proportion π_j.
    pub pi: f64,
    /// Cached ln π_j.
    pub log_pi: f64,
    /// Per-attribute term parameters, in schema order.
    pub terms: Vec<TermParams>,
}

impl ClassParams {
    /// Build with the log proportion cached.
    pub fn new(weight: f64, pi: f64, terms: Vec<TermParams>) -> Self {
        assert!(pi > 0.0 && pi <= 1.0, "mixture proportion must be in (0,1], got {pi}");
        ClassParams { weight, pi, log_pi: pi.ln(), terms }
    }

    /// Flatten `[weight, term blocks...]` for broadcast.
    pub fn to_flat(&self, out: &mut Vec<f64>) {
        out.push(self.weight);
        for t in &self.terms {
            t.to_flat(out);
        }
    }

    /// Rebuild a class from its flat block; `pi` is recomputed from the
    /// weight so every processor derives identical proportions.
    pub fn from_flat(model: &Model, j: usize, flat: &[f64]) -> Self {
        assert_eq!(flat.len(), model.class_param_len(), "flat class block length");
        let weight = flat[0];
        let mut offset = 1;
        let terms = model
            .groups
            .iter()
            .map(|g| {
                let len = g.prior.param_len();
                let t = g.prior.unflatten_params(&flat[offset..offset + len]);
                offset += len;
                t
            })
            .collect();
        let pi = Model::map_pi(weight, model.n_total, j);
        ClassParams::new(weight, pi, terms)
    }

    /// In-place variant of [`ClassParams::from_flat`]: overwrite this class
    /// from its flat block, allocation-free when the term shapes already
    /// match (the steady state of a search). Produces bitwise the same
    /// class as a rebuild.
    pub fn from_flat_into(&mut self, model: &Model, j: usize, flat: &[f64]) {
        assert_eq!(flat.len(), model.class_param_len(), "flat class block length");
        if self.terms.len() != model.groups.len() {
            *self = ClassParams::from_flat(model, j, flat);
            return;
        }
        let weight = flat[0];
        let pi = Model::map_pi(weight, model.n_total, j);
        assert!(pi > 0.0 && pi <= 1.0, "mixture proportion must be in (0,1], got {pi}");
        self.weight = weight;
        self.pi = pi;
        self.log_pi = pi.ln();
        let mut offset = 1;
        for (g, term) in model.groups.iter().zip(&mut self.terms) {
            let len = g.prior.param_len();
            g.prior.unflatten_params_into(&flat[offset..offset + len], term);
            offset += len;
        }
    }
}

/// Flatten a whole class list (the broadcast payload).
pub fn classes_to_flat(classes: &[ClassParams]) -> Vec<f64> {
    let mut out = Vec::new();
    for c in classes {
        c.to_flat(&mut out);
    }
    out
}

/// Rebuild a class list from its broadcast payload.
pub fn classes_from_flat(model: &Model, j: usize, flat: &[f64]) -> Vec<ClassParams> {
    let stride = model.class_param_len();
    assert_eq!(flat.len(), stride * j, "flat classes length");
    flat.chunks_exact(stride).map(|b| ClassParams::from_flat(model, j, b)).collect()
}

/// In-place variant of [`classes_from_flat`]: refill `classes` from the
/// broadcast payload, allocation-free when it already holds `j` classes of
/// the right term shapes; a shape change falls back to a rebuild. Bitwise
/// equal to [`classes_from_flat`] either way.
pub fn classes_from_flat_into(
    model: &Model,
    j: usize,
    flat: &[f64],
    classes: &mut Vec<ClassParams>,
) {
    let stride = model.class_param_len();
    assert_eq!(flat.len(), stride * j, "flat classes length");
    if classes.len() != j {
        *classes = classes_from_flat(model, j, flat);
        return;
    }
    for (class, block) in classes.iter_mut().zip(flat.chunks_exact(stride)) {
        class.from_flat_into(model, j, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::Attribute;
    use crate::model::prior::TermParams;

    fn model() -> Model {
        let schema = Schema::new(vec![Attribute::real("x", 0.1), Attribute::discrete("c", 3)]);
        let data = Dataset::from_rows(
            schema.clone(),
            &[
                vec![Value::Real(0.0), Value::Discrete(0)],
                vec![Value::Real(2.0), Value::Discrete(1)],
                vec![Value::Real(4.0), Value::Discrete(2)],
            ],
        );
        let stats = GlobalStats::compute(&data.full_view());
        Model::new(schema, &stats)
    }

    #[test]
    fn model_shapes() {
        let m = model();
        assert_eq!(m.n_attrs(), 2);
        assert_eq!(m.n_total, 3.0);
        // 1 weight + 2 normal params + 3 multinomial log-probs
        assert_eq!(m.class_param_len(), 6);
    }

    #[test]
    fn map_pi_is_smoothed_and_normalized() {
        // Weights summing to N give proportions summing to 1.
        let n = 100.0;
        let j = 4;
        let ws = [50.0, 30.0, 15.0, 5.0];
        let total: f64 = ws.iter().map(|&w| Model::map_pi(w, n, j)).sum();
        assert!((total - 1.0).abs() < 1e-12, "{total}");
        // Empty class still has positive probability.
        assert!(Model::map_pi(0.0, n, j) > 0.0);
    }

    #[test]
    fn class_flat_round_trip() {
        let m = model();
        let classes = vec![
            ClassParams::new(
                2.0,
                Model::map_pi(2.0, m.n_total, 2),
                vec![
                    TermParams::normal(1.0, 0.5),
                    TermParams::Multinomial { log_p: vec![-0.1, -2.0, -3.0] },
                ],
            ),
            ClassParams::new(
                1.0,
                Model::map_pi(1.0, m.n_total, 2),
                vec![
                    TermParams::normal(3.0, 1.5),
                    TermParams::Multinomial { log_p: vec![-1.0, -1.0, -1.0] },
                ],
            ),
        ];
        let flat = classes_to_flat(&classes);
        assert_eq!(flat.len(), 2 * m.class_param_len());
        let back = classes_from_flat(&m, 2, &flat);
        assert_eq!(back, classes);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1]")]
    fn zero_pi_rejected() {
        ClassParams::new(1.0, 0.0, vec![]);
    }
}
