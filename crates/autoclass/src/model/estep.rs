//! `update_wts`: the E-step. Computes normalized class-membership weights
//! for every item and the per-class weight sums — the function the paper's
//! profiling found (together with `update_parameters`) to consume ~99.5 %
//! of AutoClass's runtime inside `base_cycle`.

use crate::data::dataset::DataView;
use crate::model::class::{ClassParams, Model};

/// Column-major item×class weight matrix: `class_column(j)[i]` is w_ij.
/// Column-major because every kernel (log-density accumulation, statistics
/// accumulation) walks all items of one class.
#[derive(Debug, Clone, PartialEq)]
pub struct WtsMatrix {
    n: usize,
    j: usize,
    data: Vec<f64>,
}

impl WtsMatrix {
    /// A zeroed `n × j` matrix.
    pub fn new(n: usize, j: usize) -> Self {
        WtsMatrix { n, j, data: vec![0.0; n * j] }
    }

    /// Number of items (rows).
    pub fn n_items(&self) -> usize {
        self.n
    }

    /// Number of classes (columns).
    pub fn n_classes(&self) -> usize {
        self.j
    }

    /// Class `c`'s weights over all items.
    pub fn class_column(&self, c: usize) -> &[f64] {
        &self.data[c * self.n..(c + 1) * self.n]
    }

    /// Mutable access to class `c`'s weights.
    pub fn class_column_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.data[c * self.n..(c + 1) * self.n]
    }

    /// Item `i`'s weights across classes (strided; test/report use only —
    /// hot paths work column-wise).
    pub fn item_weights(&self, i: usize) -> Vec<f64> {
        (0..self.j).map(|c| self.data[c * self.n + i]).collect()
    }

    /// Resize for a different class count, zeroing contents.
    pub fn reset(&mut self, n: usize, j: usize) {
        self.n = n;
        self.j = j;
        self.data.clear();
        self.data.resize(n * j, 0.0);
    }
}

/// Outputs of one E-step over one partition. In P-AutoClass the vector
/// `class_weight_sums` and the two scalars are combined across processors
/// with Allreduce(+); everything is a plain sum over items.
#[derive(Debug, Clone, PartialEq)]
pub struct EStepOut {
    /// w_j = Σ_i w_ij for each class (this partition's part).
    pub class_weight_sums: Vec<f64>,
    /// Incomplete-data log likelihood Σ_i ln Σ_j π_j p(x_i|j).
    pub log_likelihood: f64,
    /// Complete-data log likelihood at the current weights:
    /// Σ_i Σ_j w_ij (ln π_j + ln p(x_i|j)); used by the Cheeseman–Stutz
    /// marginal-likelihood approximation.
    pub complete_ll: f64,
    /// Abstract op count for the virtual-time model.
    pub ops: u64,
}

/// Compute class-membership weights for every item in `view` given the
/// current classes, storing them in `wts` (resized as needed).
///
/// Implementation: per class, fill that weight column with
/// `ln π_j + Σ_k ln p(x_ik | class j)` via the batched per-attribute
/// kernels, then normalize each item's row with log-sum-exp.
pub fn update_wts(
    model: &Model,
    view: &DataView<'_>,
    classes: &[ClassParams],
    wts: &mut WtsMatrix,
) -> EStepOut {
    let n = view.len();
    let j = classes.len();
    assert!(j >= 1, "need at least one class");
    wts.reset(n, j);

    // Phase 1: joint log densities, column by column (cache-friendly).
    for (c, class) in classes.iter().enumerate() {
        let col = wts.class_column_mut(c);
        col.iter_mut().for_each(|v| *v = class.log_pi);
        for (term, group) in class.terms.iter().zip(&model.groups) {
            match &group.prior {
                crate::model::prior::TermPrior::Normal { .. }
                | crate::model::prior::TermPrior::LogNormal { .. } => {
                    term.accumulate_log_prob_real(view.real_column(group.attrs[0]), col);
                }
                crate::model::prior::TermPrior::Multinomial { missing_level, .. } => {
                    let ls = view.discrete_column(group.attrs[0]);
                    if *missing_level {
                        term.accumulate_log_prob_discrete_with_missing(ls, col);
                    } else {
                        term.accumulate_log_prob_discrete(ls, col);
                    }
                }
                crate::model::prior::TermPrior::MultiNormal { .. } => {
                    let cols: Vec<&[f64]> =
                        group.attrs.iter().map(|&a| view.real_column(a)).collect();
                    term.accumulate_log_prob_mvn(&cols, col);
                }
            }
        }
    }

    // Phase 2: per-item normalization (log-sum-exp across the row) and the
    // three reductions.
    let mut class_weight_sums = vec![0.0; j];
    let mut log_likelihood = 0.0;
    let mut complete_ll = 0.0;
    let mut row = vec![0.0; j];
    for i in 0..n {
        let mut max = f64::NEG_INFINITY;
        for (c, r) in row.iter_mut().enumerate() {
            let v = wts.data[c * n + i];
            *r = v;
            if v > max {
                max = v;
            }
        }
        // All-(-inf) rows cannot occur: log_pi is finite and term kernels
        // add finite values (multinomial smoothing keeps log_p finite).
        let mut sum = 0.0;
        for r in &row {
            sum += (r - max).exp();
        }
        let lse = max + sum.ln();
        log_likelihood += lse;
        for (c, &r) in row.iter().enumerate() {
            let w = (r - lse).exp();
            wts.data[c * n + i] = w;
            class_weight_sums[c] += w;
            if w > 0.0 {
                complete_ll += w * r;
            }
        }
    }

    let k = model.n_attrs() as u64;
    let ops = (n as u64) * (j as u64) * (k + 2);
    EStepOut { class_weight_sums, log_likelihood, complete_ll, ops }
}

/// Abstract op count of one E-step with the given dimensions (for cost
/// accounting without running it).
pub fn estep_ops(n: usize, j: usize, k: usize) -> u64 {
    (n as u64) * (j as u64) * (k as u64 + 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::{Attribute, Schema};
    use crate::data::stats::GlobalStats;
    use crate::model::prior::TermParams;

    fn two_cluster_setup() -> (Dataset, Model, Vec<ClassParams>) {
        let schema = Schema::new(vec![Attribute::real("x", 0.01)]);
        let data = Dataset::from_rows(
            schema.clone(),
            &[
                vec![Value::Real(-5.0)],
                vec![Value::Real(-5.1)],
                vec![Value::Real(5.0)],
                vec![Value::Real(5.1)],
            ],
        );
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(schema, &stats);
        let classes = vec![
            ClassParams::new(2.0, 0.5, vec![TermParams::normal(-5.0, 0.5)]),
            ClassParams::new(2.0, 0.5, vec![TermParams::normal(5.0, 0.5)]),
        ];
        (data, model, classes)
    }

    #[test]
    fn weights_are_normalized_per_item() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        for i in 0..4 {
            let s: f64 = wts.item_weights(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "item {i}: {s}");
        }
        let total: f64 = out.class_weight_sums.iter().sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn well_separated_items_get_confident_weights() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        update_wts(&model, &data.full_view(), &classes, &mut wts);
        assert!(wts.item_weights(0)[0] > 0.999);
        assert!(wts.item_weights(2)[1] > 0.999);
    }

    #[test]
    fn log_likelihood_matches_manual_computation() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        let mut expect = 0.0;
        let v = data.full_view();
        for i in 0..4 {
            let x = v.real_column(0)[i];
            let lp: Vec<f64> =
                classes.iter().map(|c| c.log_pi + c.terms[0].log_prob_real(x)).collect();
            expect += crate::math::log_sum_exp(&lp);
        }
        assert!((out.log_likelihood - expect).abs() < 1e-10);
    }

    #[test]
    fn complete_ll_never_exceeds_incomplete() {
        // By Jensen: Σ w ln f ≤ ln Σ f when w are the posteriors.
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        assert!(out.complete_ll <= out.log_likelihood + 1e-12);
    }

    #[test]
    fn partition_estep_sums_to_full() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let full = update_wts(&model, &data.full_view(), &classes, &mut wts);

        let mut acc_ll = 0.0;
        let mut acc_cll = 0.0;
        let mut acc_w = [0.0; 2];
        for range in crate::data::dataset::block_partition(4, 3) {
            let part = update_wts(&model, &data.view(range.start, range.end), &classes, &mut wts);
            acc_ll += part.log_likelihood;
            acc_cll += part.complete_ll;
            for (a, b) in acc_w.iter_mut().zip(&part.class_weight_sums) {
                *a += b;
            }
        }
        assert!((acc_ll - full.log_likelihood).abs() < 1e-10);
        assert!((acc_cll - full.complete_ll).abs() < 1e-10);
        for (a, b) in acc_w.iter().zip(&full.class_weight_sums) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn single_class_gets_weight_one() {
        let (data, model, _) = two_cluster_setup();
        let classes = vec![ClassParams::new(4.0, 1.0, vec![TermParams::normal(0.0, 5.0)])];
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        assert!(wts.class_column(0).iter().all(|&w| (w - 1.0).abs() < 1e-12));
        assert!((out.class_weight_sums[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ops_formula_matches_helper() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        assert_eq!(out.ops, estep_ops(4, 2, 1));
    }
}
