//! `update_wts`: the E-step. Computes normalized class-membership weights
//! for every item and the per-class weight sums — the function the paper's
//! profiling found (together with `update_parameters`) to consume ~99.5 %
//! of AutoClass's runtime inside `base_cycle`.

use crate::data::dataset::DataView;
use crate::model::class::{ClassParams, Model};
use crate::model::suffstats::SuffStats;

/// Column-major item×class weight matrix: `class_column(j)[i]` is w_ij.
/// Column-major because every kernel (log-density accumulation, statistics
/// accumulation) walks all items of one class.
#[derive(Debug, Clone, PartialEq)]
pub struct WtsMatrix {
    n: usize,
    j: usize,
    data: Vec<f64>,
}

impl WtsMatrix {
    /// A zeroed `n × j` matrix.
    pub fn new(n: usize, j: usize) -> Self {
        WtsMatrix { n, j, data: vec![0.0; n * j] }
    }

    /// Number of items (rows).
    pub fn n_items(&self) -> usize {
        self.n
    }

    /// Number of classes (columns).
    pub fn n_classes(&self) -> usize {
        self.j
    }

    /// Class `c`'s weights over all items.
    pub fn class_column(&self, c: usize) -> &[f64] {
        &self.data[c * self.n..(c + 1) * self.n]
    }

    /// Mutable access to class `c`'s weights.
    pub fn class_column_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.data[c * self.n..(c + 1) * self.n]
    }

    /// Item `i`'s weights across classes (strided; test/report use only —
    /// hot paths work column-wise).
    pub fn item_weights(&self, i: usize) -> Vec<f64> {
        (0..self.j).map(|c| self.data[c * self.n + i]).collect()
    }

    /// Resize for a different item/class count, keeping the existing
    /// capacity. Contents are **unspecified** afterwards: every E-step
    /// kernel overwrites each column with `log_pi` before accumulating, so
    /// the old `clear()` + zero-fill `resize` was pure wasted bandwidth
    /// (one full write of the `n × j` matrix per cycle). Callers that need
    /// zeroed storage must fill it themselves.
    pub fn reset(&mut self, n: usize, j: usize) {
        self.n = n;
        self.j = j;
        let len = n * j;
        if self.data.len() < len {
            // Grow (amortized: only until the matrix reaches its high-water
            // mark). The new tail is zeroed by `resize`; existing elements
            // keep stale values, which is fine under the overwrite contract.
            self.data.resize(len, 0.0);
        } else {
            // Shrink without touching memory: capacity is retained.
            self.data.truncate(len);
        }
    }
}

impl Default for WtsMatrix {
    /// An empty `0 × 0` matrix, ready to be `reset` to any shape.
    fn default() -> Self {
        WtsMatrix::new(0, 0)
    }
}

/// Outputs of one E-step over one partition. In P-AutoClass the vector
/// `class_weight_sums` and the two scalars are combined across processors
/// with Allreduce(+); everything is a plain sum over items.
#[derive(Debug, Clone, PartialEq)]
pub struct EStepOut {
    /// w_j = Σ_i w_ij for each class (this partition's part).
    pub class_weight_sums: Vec<f64>,
    /// Incomplete-data log likelihood Σ_i ln Σ_j π_j p(x_i|j).
    pub log_likelihood: f64,
    /// Complete-data log likelihood at the current weights:
    /// Σ_i Σ_j w_ij (ln π_j + ln p(x_i|j)); used by the Cheeseman–Stutz
    /// marginal-likelihood approximation.
    pub complete_ll: f64,
    /// Abstract op count for the virtual-time model.
    pub ops: u64,
}

/// Tile height (in items) of the blocked E-step kernel. A tile touches
/// `j` column segments of `ESTEP_TILE` doubles each: at `j = 32` that is
/// 64 KiB of weights — resident in L2 on every target, and small enough
/// that the phase-2 normalization re-reads the tile from cache instead of
/// striding across a matrix that long since left it.
pub const ESTEP_TILE: usize = 256;

/// Reusable buffers for [`update_wts_into`]. One instance lives for a whole
/// search (inside a `CycleWorkspace`); after the first cycle at a given
/// model shape no call allocates.
#[derive(Debug, Clone, Default)]
pub struct EStepScratch {
    /// w_j = Σ_i w_ij per class (this partition's part); the output vector
    /// that P-AutoClass allreduces. Resized to `j` and refilled each call.
    pub class_weight_sums: Vec<f64>,
    /// Per-item row maxima over one tile (`max_c r_ic`).
    rowmax: Vec<f64>,
    /// Per-item exponential sums over one tile (`Σ_c e_ic`), later
    /// overwritten in place with their reciprocals.
    sums: Vec<f64>,
    /// Per-item `Σ_c e_ic · r_ic` over one tile (for the complete-data
    /// log likelihood).
    accwr: Vec<f64>,
    /// Attribute-major gather of one tile's MVN block columns.
    mvn_gather: Vec<f64>,
    /// `x − μ` workspace for the Mahalanobis kernel.
    mvn_diff: Vec<f64>,
    /// Forward-substitution workspace for the Mahalanobis kernel.
    mvn_scratch: Vec<f64>,
}

/// Scalar outputs of one E-step (the vector output, `class_weight_sums`,
/// stays in the caller's [`EStepScratch`] so it can be allreduced in place).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EStepScalars {
    /// Incomplete-data log likelihood Σ_i ln Σ_j π_j p(x_i|j).
    pub log_likelihood: f64,
    /// Complete-data log likelihood at the current weights.
    pub complete_ll: f64,
    /// Abstract op count for the virtual-time model.
    pub ops: u64,
}

/// Compute class-membership weights for every item in `view` given the
/// current classes, storing them in `wts` (resized as needed).
///
/// Convenience wrapper around [`update_wts_into`] that allocates a fresh
/// [`EStepScratch`] per call. Hot paths (the `BIG_LOOP` in `search.rs`, the
/// parallel driver) thread a long-lived workspace through
/// [`update_wts_into`] instead, which performs no heap allocation in steady
/// state.
pub fn update_wts(
    model: &Model,
    view: &DataView<'_>,
    classes: &[ClassParams],
    wts: &mut WtsMatrix,
) -> EStepOut {
    let mut scratch = EStepScratch::default();
    let s = update_wts_into(model, view, classes, wts, &mut scratch);
    EStepOut {
        class_weight_sums: scratch.class_weight_sums,
        log_likelihood: s.log_likelihood,
        complete_ll: s.complete_ll,
        ops: s.ops,
    }
}

/// Consumer of finalized weight tiles inside the blocked E-step kernel.
///
/// `tile(lo, hi, wts)` is called once per tile, after pass D, when the
/// `[lo, hi)` rows of every class column hold their **final normalized**
/// weights and are still cache-hot. This is what lets the fused E+M entry
/// point accumulate sufficient statistics in the same pass without a
/// second walk over the weight matrix.
trait TileSink {
    fn tile(&mut self, lo: usize, hi: usize, wts: &WtsMatrix);
}

/// Sink for the plain E-step: no per-tile consumer.
struct NoSink;

impl TileSink for NoSink {
    #[inline]
    fn tile(&mut self, _lo: usize, _hi: usize, _wts: &WtsMatrix) {}
}

/// Sink for the fused E+M kernel: feeds each finalized tile to
/// [`SuffStats::accumulate_tile`], carrying the scalar accumulation
/// chains so the result is bitwise identical to a whole-partition
/// [`SuffStats::accumulate`] after the E-step.
struct StatsSink<'a, 'v> {
    model: &'a Model,
    view: &'a DataView<'v>,
    stats: &'a mut SuffStats,
    carry: &'a mut [f64],
    ops: u64,
}

impl TileSink for StatsSink<'_, '_> {
    fn tile(&mut self, lo: usize, hi: usize, wts: &WtsMatrix) {
        self.ops += self.stats.accumulate_tile(self.model, self.view, wts, lo, hi, self.carry);
    }
}

/// The blocked, fused E-step kernel: phase 1 (joint log densities) and
/// phase 2 (log-sum-exp normalization) run per [`ESTEP_TILE`]-item tile,
/// so the normalization reads each tile while it is still cache-hot
/// instead of walking `wts.data[c * n + i]` strides across the full
/// matrix. Allocation-free once `scratch` has warmed up.
///
/// Numerically equivalent to [`update_wts_naive`], not bitwise: phase 1
/// applies the same per-element operation sequence (`log_pi`, then each
/// term in group order) regardless of tiling, but phase 2 runs
/// column-major over the tile — one [`fast_exp`] per element followed by
/// a normalization multiply (`w_c = e_c · (1/Σe)`) where the reference
/// calls libm `exp` twice, and the scalar reductions associate per tile
/// pass rather than strictly item-by-item. The two agree to
/// final-rounding ulps; every cross-rank replication guarantee is
/// unaffected because all ranks run this same deterministic kernel.
pub fn update_wts_into(
    model: &Model,
    view: &DataView<'_>,
    classes: &[ClassParams],
    wts: &mut WtsMatrix,
    scratch: &mut EStepScratch,
) -> EStepScalars {
    update_wts_tiled(model, view, classes, wts, scratch, &mut NoSink)
}

/// Single-pass fused E+M kernel: identical to [`update_wts_into`] (same
/// tile schedule, same arithmetic — the weights and scalars come out
/// bitwise equal), but each finalized tile is immediately folded into
/// `stats` while its weights are still in cache, instead of re-reading
/// the whole `n × j` matrix in a separate [`SuffStats::accumulate`] pass.
/// The carried-chain tiling keeps the statistics bitwise identical to the
/// two-pass form as well.
///
/// `stats` must be zeroed (or hold a prior partition's partials, as in the
/// untiled call); `carry` is resized/zeroed here and is all flushed into
/// `stats` before returning. Returns the E-step scalars and the statistics
/// op count (charged separately, under the M-step phase, so phase
/// accounting matches the two-pass driver).
pub fn update_wts_and_stats_into(
    model: &Model,
    view: &DataView<'_>,
    classes: &[ClassParams],
    wts: &mut WtsMatrix,
    scratch: &mut EStepScratch,
    stats: &mut SuffStats,
    carry: &mut Vec<f64>,
) -> (EStepScalars, u64) {
    carry.clear();
    carry.resize(stats.carry_len(model), 0.0);
    let mut sink = StatsSink { model, view, stats, carry, ops: 0 };
    let scalars = update_wts_tiled(model, view, classes, wts, scratch, &mut sink);
    let stat_ops = sink.ops;
    stats.finish_tiles(model, carry);
    (scalars, stat_ops)
}

/// The tile loop shared by [`update_wts_into`] and
/// [`update_wts_and_stats_into`]; `sink` observes each tile after its
/// weights are final.
fn update_wts_tiled<S: TileSink>(
    model: &Model,
    view: &DataView<'_>,
    classes: &[ClassParams],
    wts: &mut WtsMatrix,
    scratch: &mut EStepScratch,
    sink: &mut S,
) -> EStepScalars {
    let n = view.len();
    let j = classes.len();
    assert!(j >= 1, "need at least one class");
    wts.reset(n, j);

    scratch.class_weight_sums.clear();
    scratch.class_weight_sums.resize(j, 0.0);
    scratch.rowmax.resize(ESTEP_TILE, 0.0);
    scratch.sums.resize(ESTEP_TILE, 0.0);
    scratch.accwr.resize(ESTEP_TILE, 0.0);

    let mut log_likelihood = 0.0;
    let mut complete_ll = 0.0;

    let mut lo = 0;
    while lo < n {
        let hi = (lo + ESTEP_TILE).min(n);
        let tl = hi - lo;

        // Phase 1 (tile): joint log densities, column segment by column
        // segment. Each per-attribute kernel runs on the `[lo, hi)` slice
        // of its column — the same element-wise additions the full-column
        // naive kernel performs, just grouped by tile.
        for (c, class) in classes.iter().enumerate() {
            let col = &mut wts.data[c * n + lo..c * n + hi];
            col.fill(class.log_pi);
            for (term, group) in class.terms.iter().zip(&model.groups) {
                match &group.prior {
                    crate::model::prior::TermPrior::Normal { .. }
                    | crate::model::prior::TermPrior::LogNormal { .. } => {
                        term.accumulate_log_prob_real(
                            &view.real_column(group.attrs[0])[lo..hi],
                            col,
                        );
                    }
                    crate::model::prior::TermPrior::Multinomial { missing_level, .. } => {
                        let ls = &view.discrete_column(group.attrs[0])[lo..hi];
                        if *missing_level {
                            term.accumulate_log_prob_discrete_with_missing(ls, col);
                        } else {
                            term.accumulate_log_prob_discrete(ls, col);
                        }
                    }
                    crate::model::prior::TermPrior::MultiNormal { .. } => {
                        // Gather the tile's block columns attribute-major
                        // into the reusable flat buffer (replaces the
                        // per-call `Vec<&[f64]>` of column pointers).
                        let d = group.attrs.len();
                        scratch.mvn_gather.clear();
                        scratch.mvn_gather.resize(d * tl, 0.0);
                        for (a, &attr) in group.attrs.iter().enumerate() {
                            scratch.mvn_gather[a * tl..(a + 1) * tl]
                                .copy_from_slice(&view.real_column(attr)[lo..hi]);
                        }
                        term.accumulate_log_prob_mvn_flat(
                            &scratch.mvn_gather,
                            col,
                            &mut scratch.mvn_diff,
                            &mut scratch.mvn_scratch,
                        );
                    }
                }
            }
        }

        // Phase 2 (tile): log-sum-exp normalization, column-major. Every
        // pass is a long stride-1 loop over the tile with independent
        // per-item lanes (`rm[t]`, `sums[t]`, `accwr[t]`), so the compiler
        // can vectorize the exponential and there is no serial
        // accumulation chain — the structure that makes the blocked kernel
        // faster than the row-at-a-time reference, not just cache-friendlier.
        let rm = &mut scratch.rowmax[..tl];
        let sums = &mut scratch.sums[..tl];
        let accwr = &mut scratch.accwr[..tl];

        // Pass A: per-item row maxima. All-(-inf) rows cannot occur:
        // log_pi is finite and term kernels add finite values
        // (multinomial smoothing keeps log_p finite).
        rm.fill(f64::NEG_INFINITY);
        for c in 0..j {
            let col = &wts.data[c * n + lo..c * n + hi];
            for (m, &v) in rm.iter_mut().zip(col) {
                // A select, not an `if`: the branch form mispredicts on
                // randomly ordered data (which class holds the running max
                // is item-dependent) and costs several ms per E-step.
                *m = if v > *m { v } else { *m };
            }
        }

        // Pass B: exponentials in place (the tile's log densities become
        // unnormalized weights), plus the per-item sum and the
        // complete-likelihood numerator Σ_c e·r. The `e > 0` select
        // protects the `0 · (−∞)` corner exactly like the reference's
        // `w > 0.0` guard.
        sums.fill(0.0);
        accwr.fill(0.0);
        for c in 0..j {
            let col = &mut wts.data[c * n + lo..c * n + hi];
            for t in 0..tl {
                let r = col[t];
                let e = fast_exp(r - rm[t]);
                col[t] = e;
                sums[t] += e;
                accwr[t] += if e > 0.0 { e * r } else { 0.0 };
            }
        }

        // Pass C: the two scalar reductions, i-ascending as before, then
        // reciprocals for the normalization pass.
        for (m, s) in rm.iter().zip(sums.iter()) {
            log_likelihood += m + s.ln();
        }
        for (a, s) in accwr.iter().zip(sums.iter()) {
            complete_ll += a / s;
        }
        for s in sums.iter_mut() {
            *s = 1.0 / *s;
        }

        // Pass D: normalize in place and fold each column segment into its
        // class weight sum.
        for (c, cw) in scratch.class_weight_sums.iter_mut().enumerate() {
            let col = &mut wts.data[c * n + lo..c * n + hi];
            let mut acc = 0.0;
            for (wv, &inv) in col.iter_mut().zip(sums.iter()) {
                let w = *wv * inv;
                *wv = w;
                acc += w;
            }
            *cw += acc;
        }

        // The tile's weights are final; hand them to the sink while the
        // column segments are still cache-resident.
        sink.tile(lo, hi, wts);

        lo = hi;
    }

    let k = model.n_attrs() as u64;
    let ops = (n as u64) * (j as u64) * (k + 2);
    EStepScalars { log_likelihood, complete_ll, ops }
}

/// The pre-blocking reference E-step, retained verbatim for the benchmark
/// harness (`cargo xtask bench` measures it against the blocked kernel in
/// the same process) and for the bitwise-equivalence test. Full-column
/// phase 1, then a strided full-matrix phase 2.
pub fn update_wts_naive(
    model: &Model,
    view: &DataView<'_>,
    classes: &[ClassParams],
    wts: &mut WtsMatrix,
) -> EStepOut {
    let n = view.len();
    let j = classes.len();
    assert!(j >= 1, "need at least one class");
    wts.reset(n, j);

    // Phase 1: joint log densities, column by column (cache-friendly).
    for (c, class) in classes.iter().enumerate() {
        let col = wts.class_column_mut(c);
        col.iter_mut().for_each(|v| *v = class.log_pi);
        for (term, group) in class.terms.iter().zip(&model.groups) {
            match &group.prior {
                crate::model::prior::TermPrior::Normal { .. }
                | crate::model::prior::TermPrior::LogNormal { .. } => {
                    term.accumulate_log_prob_real(view.real_column(group.attrs[0]), col);
                }
                crate::model::prior::TermPrior::Multinomial { missing_level, .. } => {
                    let ls = view.discrete_column(group.attrs[0]);
                    if *missing_level {
                        term.accumulate_log_prob_discrete_with_missing(ls, col);
                    } else {
                        term.accumulate_log_prob_discrete(ls, col);
                    }
                }
                crate::model::prior::TermPrior::MultiNormal { .. } => {
                    let cols: Vec<&[f64]> =
                        group.attrs.iter().map(|&a| view.real_column(a)).collect();
                    term.accumulate_log_prob_mvn(&cols, col);
                }
            }
        }
    }

    // Phase 2: per-item normalization (log-sum-exp across the row) and the
    // three reductions — strided `wts.data[c * n + i]` walks over the whole
    // matrix, which is what the blocked kernel eliminates.
    let mut class_weight_sums = vec![0.0; j];
    let mut log_likelihood = 0.0;
    let mut complete_ll = 0.0;
    let mut row = vec![0.0; j];
    for i in 0..n {
        let mut max = f64::NEG_INFINITY;
        for (c, r) in row.iter_mut().enumerate() {
            let v = wts.data[c * n + i];
            *r = v;
            if v > max {
                max = v;
            }
        }
        let mut sum = 0.0;
        for r in &row {
            sum += (r - max).exp();
        }
        let lse = max + sum.ln();
        log_likelihood += lse;
        for (c, &r) in row.iter().enumerate() {
            let w = (r - lse).exp();
            wts.data[c * n + i] = w;
            class_weight_sums[c] += w;
            if w > 0.0 {
                complete_ll += w * r;
            }
        }
    }

    let k = model.n_attrs() as u64;
    let ops = (n as u64) * (j as u64) * (k + 2);
    EStepOut { class_weight_sums, log_likelihood, complete_ll, ops }
}

/// Abstract op count of one E-step with the given dimensions (for cost
/// accounting without running it).
pub fn estep_ops(n: usize, j: usize, k: usize) -> u64 {
    (n as u64) * (j as u64) * (k as u64 + 2)
}

/// Branch-free `exp` for the log-sum-exp pass (where inputs are
/// `r − max ≤ 0`). This is the blocked kernel's single biggest win over
/// the reference: libm `exp` is a call with data-dependent branches, so
/// the compiler can neither inline nor vectorize the normalization loop
/// around it.
///
/// Construction: round-to-nearest integer `n = ⌊x·log₂e⌉` via the
/// 1.5·2^52 shifter (no `round()` libcall), Cody–Waite two-part ln 2
/// argument reduction to `|r| ≤ ½ln2`, a degree-12 Horner polynomial
/// (Taylor coefficients; truncation `r¹³/13!` is below one ulp on that
/// interval), and a bit-assembled power-of-two scale. The integer `n`
/// is read straight out of the shifter's mantissa bits (the shifted sum
/// stores `2^51 + n` in its low 52 bits) rather than via an `f64 → i64`
/// conversion, which has no packed form on baseline x86-64 and would
/// otherwise stop the surrounding loop from vectorizing. Relative error
/// vs libm `exp` is a few ulps (≲ 1e-15) across the supported domain.
///
/// Inputs below −708 return exactly `0.0`: true `exp` underflows to
/// subnormals there, which contribute nothing to a weight sum of order 1,
/// and returning a true zero preserves the `w > 0.0` guard that protects
/// the `0 · (−∞)` complete-likelihood corner.
///
/// Edge cases, handled by branch-free selects after the pipeline so the
/// hot path stays vectorizable:
/// * **NaN propagates.** A `max`/`min` clamp ignores a NaN operand and
///   would silently turn a NaN log-density into `exp(−708)` — a tiny
///   finite weight — corrupting the weight normalization downstream
///   without a trace; `clamp` forwards NaN but the integer exponent
///   assembly then produces garbage bits rather than NaN. A final
///   `is_nan` select returns the input itself, payload intact.
/// * **Inputs above +709 saturate to `+∞`.** The `ni << 52` exponent
///   assembly only covers normal range (`n ≤ 1023`, i.e. `x ≲ 709.78`);
///   beyond it the shifted exponent would wrap into garbage bits. The
///   log-sum-exp caller only ever passes `r − max ≤ 0`, but the guard
///   makes the helper total over `f64`.
#[inline]
fn fast_exp(x: f64) -> f64 {
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    // fdlibm's split of ln 2, quoted at its published precision (the
    // extra digits round to the same f64): LN2_HI has enough trailing
    // zeros that `n · LN2_HI` is exact for every |n| < 2^20 reachable
    // here.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
    #[allow(clippy::excessive_precision)]
    const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
    // The 1.5 · 2^52 round-to-nearest shifter.
    const SHIFT: f64 = 6_755_399_441_055_744.0;
    // Clamping to [−708, 709] keeps the assembled exponent in normal
    // range; the final selects map everything outside (and NaN) to the
    // documented results.
    let xc = x.clamp(-708.0, 709.0);
    let t = xc * LOG2E + SHIFT;
    let nf = t - SHIFT;
    let r = (xc - nf * LN2_HI) - nf * LN2_LO;
    let p = 1.0 / 479_001_600.0; // 1/12!
    let p = p * r + 1.0 / 39_916_800.0;
    let p = p * r + 1.0 / 3_628_800.0;
    let p = p * r + 1.0 / 362_880.0;
    let p = p * r + 1.0 / 40_320.0;
    let p = p * r + 1.0 / 5_040.0;
    let p = p * r + 1.0 / 720.0;
    let p = p * r + 1.0 / 120.0;
    let p = p * r + 1.0 / 24.0;
    let p = p * r + 1.0 / 6.0;
    let p = p * r + 0.5;
    let p = p * r + 1.0;
    let p = p * r + 1.0;
    // `t` lies in [2^52, 2^53), so its mantissa field holds the integer
    // `2^51 + n` exactly; peel `n` back out with integer ops only and
    // fold the `− 2^51` and the `+ 1023` exponent bias into one constant.
    let ni = (t.to_bits() & ((1u64 << 52) - 1)) as i64 + (1023 - (1i64 << 51));
    let scale = f64::from_bits((ni << 52) as u64);
    let v = p * scale;
    // Ordered selects: saturate the unrepresentable tails first, then let
    // NaN (for which both comparisons are false) override everything.
    let v = if x > 709.0 { f64::INFINITY } else { v };
    let v = if x < -708.0 { 0.0 } else { v };
    if x.is_nan() {
        x
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::{Attribute, Schema};
    use crate::data::stats::GlobalStats;
    use crate::model::prior::TermParams;

    fn two_cluster_setup() -> (Dataset, Model, Vec<ClassParams>) {
        let schema = Schema::new(vec![Attribute::real("x", 0.01)]);
        let data = Dataset::from_rows(
            schema.clone(),
            &[
                vec![Value::Real(-5.0)],
                vec![Value::Real(-5.1)],
                vec![Value::Real(5.0)],
                vec![Value::Real(5.1)],
            ],
        );
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(schema, &stats);
        let classes = vec![
            ClassParams::new(2.0, 0.5, vec![TermParams::normal(-5.0, 0.5)]),
            ClassParams::new(2.0, 0.5, vec![TermParams::normal(5.0, 0.5)]),
        ];
        (data, model, classes)
    }

    #[test]
    fn weights_are_normalized_per_item() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        for i in 0..4 {
            let s: f64 = wts.item_weights(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "item {i}: {s}");
        }
        let total: f64 = out.class_weight_sums.iter().sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn well_separated_items_get_confident_weights() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        update_wts(&model, &data.full_view(), &classes, &mut wts);
        assert!(wts.item_weights(0)[0] > 0.999);
        assert!(wts.item_weights(2)[1] > 0.999);
    }

    #[test]
    fn log_likelihood_matches_manual_computation() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        let mut expect = 0.0;
        let v = data.full_view();
        for i in 0..4 {
            let x = v.real_column(0)[i];
            let lp: Vec<f64> =
                classes.iter().map(|c| c.log_pi + c.terms[0].log_prob_real(x)).collect();
            expect += crate::math::log_sum_exp(&lp);
        }
        assert!((out.log_likelihood - expect).abs() < 1e-10);
    }

    #[test]
    fn complete_ll_never_exceeds_incomplete() {
        // By Jensen: Σ w ln f ≤ ln Σ f when w are the posteriors.
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        assert!(out.complete_ll <= out.log_likelihood + 1e-12);
    }

    #[test]
    fn partition_estep_sums_to_full() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let full = update_wts(&model, &data.full_view(), &classes, &mut wts);

        let mut acc_ll = 0.0;
        let mut acc_cll = 0.0;
        let mut acc_w = [0.0; 2];
        for range in crate::data::dataset::block_partition(4, 3) {
            let part = update_wts(&model, &data.view(range.start, range.end), &classes, &mut wts);
            acc_ll += part.log_likelihood;
            acc_cll += part.complete_ll;
            for (a, b) in acc_w.iter_mut().zip(&part.class_weight_sums) {
                *a += b;
            }
        }
        assert!((acc_ll - full.log_likelihood).abs() < 1e-10);
        assert!((acc_cll - full.complete_ll).abs() < 1e-10);
        for (a, b) in acc_w.iter().zip(&full.class_weight_sums) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn single_class_gets_weight_one() {
        let (data, model, _) = two_cluster_setup();
        let classes = vec![ClassParams::new(4.0, 1.0, vec![TermParams::normal(0.0, 5.0)])];
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        assert!(wts.class_column(0).iter().all(|&w| (w - 1.0).abs() < 1e-12));
        assert!((out.class_weight_sums[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ops_formula_matches_helper() {
        let (data, model, classes) = two_cluster_setup();
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        assert_eq!(out.ops, estep_ops(4, 2, 1));
    }

    /// Many items (forcing several tiles plus a ragged tail): the blocked
    /// kernel must match the retained naive reference to final-rounding
    /// precision. Phase 1 is the identical operation sequence; phase 2
    /// replaces two libm `exp` calls per element with one `fast_exp` plus
    /// a normalization multiply, so outputs agree to a few ulps rather
    /// than bitwise.
    #[test]
    fn blocked_kernel_matches_naive_to_rounding() {
        fn close(a: f64, b: f64, what: &str) {
            let tol = 1e-12 * a.abs().max(b.abs()).max(1e-300);
            assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
        }
        let schema = Schema::new(vec![Attribute::real("x", 0.01)]);
        let n = 2 * ESTEP_TILE + 37;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                let x = if i % 2 == 0 { -5.0 } else { 5.0 } + (i as f64) * 1e-3;
                vec![Value::Real(x)]
            })
            .collect();
        let data = Dataset::from_rows(schema.clone(), &rows);
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(schema, &stats);
        let classes = vec![
            ClassParams::new(n as f64 / 2.0, 0.5, vec![TermParams::normal(-5.0, 0.7)]),
            ClassParams::new(n as f64 / 2.0, 0.5, vec![TermParams::normal(5.0, 0.7)]),
        ];

        let mut wts_naive = WtsMatrix::new(0, 0);
        let naive = update_wts_naive(&model, &data.full_view(), &classes, &mut wts_naive);

        let mut wts_blocked = WtsMatrix::new(0, 0);
        let mut scratch = EStepScratch::default();
        let blocked =
            update_wts_into(&model, &data.full_view(), &classes, &mut wts_blocked, &mut scratch);

        close(naive.log_likelihood, blocked.log_likelihood, "log likelihood");
        close(naive.complete_ll, blocked.complete_ll, "complete log likelihood");
        assert_eq!(naive.ops, blocked.ops);
        for (a, b) in naive.class_weight_sums.iter().zip(&scratch.class_weight_sums) {
            close(*a, *b, "class weight sums");
        }
        for c in 0..2 {
            for (a, b) in wts_naive.class_column(c).iter().zip(wts_blocked.class_column(c)) {
                close(*a, *b, "weight matrix");
            }
        }
    }

    /// The fused single-pass E+M kernel vs the two-pass form
    /// (`update_wts_into` then `SuffStats::accumulate`): weights, scalars,
    /// class weight sums, and the sufficient statistics must all be
    /// **bitwise** identical, and the op counts must match — across
    /// several tiles plus a ragged tail, on a mixed real + discrete
    /// schema with missing values.
    #[test]
    fn fused_estep_mstep_is_bitwise_identical_to_two_pass() {
        use crate::model::suffstats::{StatLayout, SuffStats};

        let schema = Schema::new(vec![Attribute::real("x", 0.01), Attribute::discrete("c", 3)]);
        let n = 2 * ESTEP_TILE + 37;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                let x = if i % 7 == 3 {
                    Value::Missing
                } else {
                    Value::Real(if i % 2 == 0 { -5.0 } else { 5.0 } + (i as f64) * 1e-3)
                };
                let c = if i % 11 == 5 { Value::Missing } else { Value::Discrete((i % 3) as u32) };
                vec![x, c]
            })
            .collect();
        let data = Dataset::from_rows(schema.clone(), &rows);
        let gstats = GlobalStats::compute(&data.full_view());
        let model = Model::new(schema, &gstats);
        let third = (1.0f64 / 3.0).ln();
        let classes = vec![
            ClassParams::new(
                n as f64 / 2.0,
                0.5,
                vec![
                    TermParams::normal(-5.0, 0.7),
                    TermParams::Multinomial { log_p: vec![third; 3] },
                ],
            ),
            ClassParams::new(
                n as f64 / 2.0,
                0.5,
                vec![
                    TermParams::normal(5.0, 0.7),
                    TermParams::Multinomial { log_p: vec![third; 3] },
                ],
            ),
        ];
        let view = data.full_view();

        // Two-pass reference: E-step, then a whole-partition accumulate.
        let mut wts_two = WtsMatrix::new(0, 0);
        let mut scratch_two = EStepScratch::default();
        let e_two = update_wts_into(&model, &view, &classes, &mut wts_two, &mut scratch_two);
        let mut stats_two = SuffStats::zeros(StatLayout::new(&model, 2));
        let mops_two = stats_two.accumulate(&model, &view, &wts_two);

        // Fused single pass.
        let mut wts_fused = WtsMatrix::new(0, 0);
        let mut scratch_fused = EStepScratch::default();
        let mut stats_fused = SuffStats::zeros(StatLayout::new(&model, 2));
        let mut carry = Vec::new();
        let (e_fused, mops_fused) = update_wts_and_stats_into(
            &model,
            &view,
            &classes,
            &mut wts_fused,
            &mut scratch_fused,
            &mut stats_fused,
            &mut carry,
        );

        assert_eq!(e_two.log_likelihood.to_bits(), e_fused.log_likelihood.to_bits());
        assert_eq!(e_two.complete_ll.to_bits(), e_fused.complete_ll.to_bits());
        assert_eq!(e_two.ops, e_fused.ops);
        assert_eq!(mops_two, mops_fused, "statistics op counts must match");
        for (c, (a, b)) in
            scratch_two.class_weight_sums.iter().zip(&scratch_fused.class_weight_sums).enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "class weight sum {c}");
        }
        for c in 0..2 {
            for (i, (a, b)) in
                wts_two.class_column(c).iter().zip(wts_fused.class_column(c)).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "weight [{c}][{i}]");
            }
        }
        for (i, (a, b)) in stats_two.data.iter().zip(&stats_fused.data).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "stat slot {i}: {a} vs {b}");
        }
    }

    /// `fast_exp` against libm `exp`: a few ulps of relative error across
    /// the log-sum-exp input range, exact at 0, exactly zero below −708,
    /// and well-behaved at −∞ (an all-but-impossible log density must not
    /// poison the weights with NaN).
    #[test]
    fn fast_exp_tracks_libm_exp() {
        let mut x = -740.0;
        while x <= 20.0 {
            let (got, want) = (fast_exp(x), x.exp());
            if x < -708.0 {
                assert_eq!(got, 0.0, "x={x}");
            } else {
                let rel = (got - want).abs() / want;
                assert!(rel < 1e-14, "x={x}: fast {got:e} vs libm {want:e} (rel {rel:e})");
            }
            x += 0.0137;
        }
        assert_eq!(fast_exp(0.0).to_bits(), 1.0f64.to_bits(), "exp(0) must be exactly 1");
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(-1e9), 0.0);
    }

    /// Regression: `x.max(-708.0)` ignores a NaN operand, so the pre-fix
    /// implementation mapped a NaN log-density to the finite `exp(−708)`
    /// and corrupted the weight normalization silently. NaN must come back
    /// out as NaN.
    #[test]
    fn fast_exp_propagates_nan() {
        assert!(fast_exp(f64::NAN).is_nan());
        assert!(fast_exp(-f64::NAN).is_nan());
    }

    /// Regression: the `ni << 52` exponent assembly only covers normal
    /// range; inputs above +709 (including `+∞`) must saturate to `+∞`
    /// rather than wrap the exponent bits into garbage.
    #[test]
    fn fast_exp_saturates_positive_overflow() {
        assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(fast_exp(710.0), f64::INFINITY);
        assert_eq!(fast_exp(1e9), f64::INFINITY);
        // Just inside the guard: still finite and accurate.
        let rel = (fast_exp(709.0) - 709.0f64.exp()).abs() / 709.0f64.exp();
        assert!(rel < 1e-14, "rel {rel:e}");
    }

    /// `exp(1)` through the fast path agrees with Euler's number to a few
    /// ulps (the positive side of the domain is exercised explicitly; the
    /// sweep above is dominated by negative log-sum-exp inputs).
    #[test]
    fn fast_exp_at_one_matches_e() {
        let rel = (fast_exp(1.0) - std::f64::consts::E).abs() / std::f64::consts::E;
        assert!(rel < 1e-15, "fast_exp(1)={:e} rel {rel:e}", fast_exp(1.0));
    }

    /// `reset` keeps capacity: shrinking and re-growing within the
    /// high-water mark must not reallocate.
    #[test]
    fn reset_keeps_capacity_and_shape() {
        let mut wts = WtsMatrix::new(100, 4);
        let cap = wts.data.capacity();
        wts.reset(100, 2);
        assert_eq!((wts.n_items(), wts.n_classes()), (100, 2));
        assert_eq!(wts.data.capacity(), cap, "shrink must keep capacity");
        wts.reset(100, 4);
        assert_eq!(wts.data.capacity(), cap, "regrow within capacity must not allocate");
        assert_eq!(wts.data.len(), 400);
    }
}
