//! Attribute schemas: what kind of value each column holds and the
//! metadata the model terms need (measurement error, level counts).

/// The statistical type of one attribute (column).
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeKind {
    /// A real-valued scalar measurement. `error` is the measurement error
    /// of the instrument; AutoClass uses it as a floor on the modeled
    /// standard deviation so a class can never claim to know a value more
    /// precisely than it was measured.
    Real {
        /// Absolute measurement error (> 0).
        error: f64,
    },
    /// A strictly positive real modeled on the log scale (AutoClass's
    /// `single_normal_ln` term). `error` is relative measurement error.
    PositiveReal {
        /// Relative measurement error (> 0).
        error: f64,
    },
    /// A categorical attribute with values in `0..levels`.
    Discrete {
        /// Number of distinct levels (≥ 2).
        levels: usize,
        /// Optional human-readable level names, `levels` long when given.
        names: Option<Vec<String>>,
    },
}

impl AttributeKind {
    /// True for the real-valued kinds.
    pub fn is_real(&self) -> bool {
        matches!(self, AttributeKind::Real { .. } | AttributeKind::PositiveReal { .. })
    }
}

/// One attribute (column) of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Column name, used in reports and CSV headers.
    pub name: String,
    /// Statistical type.
    pub kind: AttributeKind,
}

impl Attribute {
    /// A real attribute with the given measurement error.
    pub fn real(name: impl Into<String>, error: f64) -> Self {
        assert!(error > 0.0, "measurement error must be positive");
        Attribute { name: name.into(), kind: AttributeKind::Real { error } }
    }

    /// A positive real attribute modeled on the log scale.
    pub fn positive_real(name: impl Into<String>, error: f64) -> Self {
        assert!(error > 0.0, "measurement error must be positive");
        Attribute { name: name.into(), kind: AttributeKind::PositiveReal { error } }
    }

    /// A discrete attribute with `levels` unnamed levels.
    pub fn discrete(name: impl Into<String>, levels: usize) -> Self {
        assert!(levels >= 2, "discrete attributes need at least 2 levels");
        Attribute { name: name.into(), kind: AttributeKind::Discrete { levels, names: None } }
    }

    /// A discrete attribute with named levels.
    pub fn discrete_named(name: impl Into<String>, names: Vec<String>) -> Self {
        assert!(names.len() >= 2, "discrete attributes need at least 2 levels");
        Attribute {
            name: name.into(),
            kind: AttributeKind::Discrete { levels: names.len(), names: Some(names) },
        }
    }
}

/// The full column layout of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Attributes, in column order.
    pub attributes: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from attributes.
    ///
    /// # Panics
    /// Panics if empty or if names collide (both would be programming
    /// errors at experiment-definition time).
    pub fn new(attributes: Vec<Attribute>) -> Self {
        assert!(!attributes.is_empty(), "schema needs at least one attribute");
        for i in 0..attributes.len() {
            for j in i + 1..attributes.len() {
                assert_ne!(
                    attributes[i].name, attributes[j].name,
                    "duplicate attribute name {:?}",
                    attributes[i].name
                );
            }
        }
        Schema { attributes }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// A schema of `k` real attributes named `x0..x{k-1}` with unit-scale
    /// measurement error — the shape of the paper's synthetic dataset
    /// (which used two real attributes).
    pub fn reals(k: usize, error: f64) -> Self {
        Schema::new((0..k).map(|i| Attribute::real(format!("x{i}"), error)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_validate() {
        let s = Schema::new(vec![
            Attribute::real("height", 0.1),
            Attribute::discrete("color", 3),
            Attribute::positive_real("mass", 0.01),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("color"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.attributes[0].kind.is_real());
        assert!(!s.attributes[1].kind.is_real());
        assert!(s.attributes[2].kind.is_real());
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![Attribute::real("x", 1.0), Attribute::real("x", 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least 2 levels")]
    fn single_level_discrete_rejected() {
        Attribute::discrete("c", 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_error_rejected() {
        Attribute::real("x", 0.0);
    }

    #[test]
    fn reals_helper_names_columns() {
        let s = Schema::reals(2, 0.5);
        assert_eq!(s.attributes[0].name, "x0");
        assert_eq!(s.attributes[1].name, "x1");
    }

    #[test]
    fn named_levels_sets_count() {
        let a = Attribute::discrete_named("c", vec!["red".into(), "green".into()]);
        match a.kind {
            AttributeKind::Discrete { levels, ref names } => {
                assert_eq!(levels, 2);
                assert_eq!(names.as_ref().unwrap()[1], "green");
            }
            _ => panic!("wrong kind"),
        }
    }
}
