//! Minimal CSV reader/writer for datasets.
//!
//! AutoClass C read `.db2` data files with a separate `.hd2` header; here
//! the schema plays the header's role and the data file is plain CSV with
//! a header row of attribute names. Missing values are written as `?`.
//! Discrete values are written as level names when the schema has them,
//! level indices otherwise. Fields never contain commas, so no quoting is
//! implemented (and quoted input is rejected loudly).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::data::dataset::{Dataset, Value};
use crate::data::schema::{AttributeKind, Schema};

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Underlying I/O error text.
    Io(String),
    /// Header row doesn't match the schema.
    Header(String),
    /// A data row failed to parse; includes 1-based line number.
    #[allow(missing_docs)] // field names are self-describing
    Row { line: usize, detail: String },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Header(e) => write!(f, "bad header: {e}"),
            CsvError::Row { line, detail } => write!(f, "line {line}: {detail}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e.to_string())
    }
}

/// Parse a dataset from CSV text conforming to `schema`.
pub fn read_csv<R: Read>(schema: Schema, reader: R) -> Result<Dataset, CsvError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| CsvError::Header("empty input".into()))??;
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    if names.len() != schema.len() {
        return Err(CsvError::Header(format!(
            "{} columns in header, schema has {}",
            names.len(),
            schema.len()
        )));
    }
    for (name, attr) in names.iter().zip(&schema.attributes) {
        if *name != attr.name {
            return Err(CsvError::Header(format!(
                "column {:?} where schema expects {:?}",
                name, attr.name
            )));
        }
    }

    let mut rows: Vec<Vec<Value>> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2; // 1-based, after header
        if line.trim().is_empty() {
            continue;
        }
        if line.contains('"') {
            return Err(CsvError::Row { line: lineno, detail: "quoted fields unsupported".into() });
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != schema.len() {
            return Err(CsvError::Row {
                line: lineno,
                detail: format!("{} fields, expected {}", fields.len(), schema.len()),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (field, attr) in fields.iter().zip(&schema.attributes) {
            if *field == "?" {
                row.push(Value::Missing);
                continue;
            }
            match &attr.kind {
                AttributeKind::Real { .. } | AttributeKind::PositiveReal { .. } => {
                    let x: f64 = field.parse().map_err(|_| CsvError::Row {
                        line: lineno,
                        detail: format!("{:?} is not a real for column {:?}", field, attr.name),
                    })?;
                    row.push(Value::Real(x));
                }
                AttributeKind::Discrete { levels, names } => {
                    let idx = if let Some(names) = names {
                        names.iter().position(|n| n == field)
                    } else {
                        field.parse::<usize>().ok().filter(|&l| l < *levels)
                    };
                    match idx {
                        Some(l) => row.push(Value::Discrete(l as u32)),
                        None => {
                            return Err(CsvError::Row {
                                line: lineno,
                                detail: format!(
                                    "{:?} is not a level of column {:?}",
                                    field, attr.name
                                ),
                            })
                        }
                    }
                }
            }
        }
        rows.push(row);
    }
    Ok(Dataset::from_rows(schema, &rows))
}

/// Write a dataset as CSV (header + rows, `?` for missing).
pub fn write_csv<W: Write>(data: &Dataset, writer: W) -> Result<(), CsvError> {
    let mut w = BufWriter::new(writer);
    let schema = data.schema();
    let header: Vec<&str> = schema.attributes.iter().map(|a| a.name.as_str()).collect();
    writeln!(w, "{}", header.join(","))?;
    let view = data.full_view();
    let mut line = String::new();
    for i in 0..data.len() {
        line.clear();
        for (c, attr) in schema.attributes.iter().enumerate() {
            if c > 0 {
                line.push(',');
            }
            match &attr.kind {
                AttributeKind::Real { .. } | AttributeKind::PositiveReal { .. } => {
                    let x = view.real_column(c)[i];
                    if x.is_nan() {
                        line.push('?');
                    } else {
                        let _ = write!(line, "{x}");
                    }
                }
                AttributeKind::Discrete { names, .. } => {
                    let l = view.discrete_column(c)[i];
                    if l == crate::data::dataset::MISSING_DISCRETE {
                        line.push('?');
                    } else if let Some(names) = names {
                        line.push_str(&names[l as usize]);
                    } else {
                        let _ = write!(line, "{l}");
                    }
                }
            }
        }
        writeln!(w, "{line}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::real("x", 0.1),
            Attribute::discrete_named("c", vec!["a".into(), "b".into()]),
        ])
    }

    #[test]
    fn round_trip() {
        let d = Dataset::from_rows(
            schema(),
            &[
                vec![Value::Real(1.5), Value::Discrete(0)],
                vec![Value::Missing, Value::Discrete(1)],
                vec![Value::Real(-2.0), Value::Missing],
            ],
        );
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("x,c\n"));
        assert!(text.contains("?,b"));
        let back = read_csv(schema(), buf.as_slice()).unwrap();
        // NaN != NaN, so compare cell by cell with missing-awareness.
        assert_eq!(back.len(), d.len());
        let (va, vb) = (d.full_view(), back.full_view());
        for i in 0..d.len() {
            let (xa, xb) = (va.real_column(0)[i], vb.real_column(0)[i]);
            assert!(xa == xb || (xa.is_nan() && xb.is_nan()), "row {i}");
            assert_eq!(va.discrete_column(1)[i], vb.discrete_column(1)[i], "row {i}");
        }
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let e = read_csv(schema(), "x,wrong\n1.0,a\n".as_bytes()).unwrap_err();
        assert!(matches!(e, CsvError::Header(_)), "{e}");
    }

    #[test]
    fn bad_real_reports_line() {
        let e = read_csv(schema(), "x,c\n1.0,a\nplop,b\n".as_bytes()).unwrap_err();
        match e {
            CsvError::Row { line, detail } => {
                assert_eq!(line, 3);
                assert!(detail.contains("plop"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unknown_level_rejected() {
        let e = read_csv(schema(), "x,c\n1.0,zebra\n".as_bytes()).unwrap_err();
        assert!(matches!(e, CsvError::Row { line: 2, .. }), "{e}");
    }

    #[test]
    fn unnamed_levels_parse_as_indices() {
        let schema = Schema::new(vec![Attribute::discrete("c", 3)]);
        let d = read_csv(schema, "c\n0\n2\n?\n".as_bytes()).unwrap();
        assert_eq!(d.len(), 3);
        let v = d.full_view();
        assert_eq!(v.discrete_column(0)[1], 2);
    }

    #[test]
    fn blank_lines_skipped() {
        let schema = Schema::new(vec![Attribute::real("x", 0.1)]);
        let d = read_csv(schema, "x\n1.0\n\n2.0\n".as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
    }
}
