//! Global (whole-dataset) attribute statistics.
//!
//! AutoClass derives its parameter priors from the data itself (an
//! empirical-Bayes choice): the prior mean of a class's Gaussian is the
//! global mean, its prior variance the global variance, and so on. These
//! statistics are computed once before the search starts. In P-AutoClass
//! they are computed from per-processor partial sums combined with an
//! Allreduce; [`GlobalStats::merge`] is that combination step.

use crate::data::dataset::DataView;
use crate::data::schema::AttributeKind;

/// Sufficient statistics of one attribute over (part of) a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrStats {
    /// Real attribute: count, sum, sum of squares, and (for the log-normal
    /// term) sums of logs. Missing values excluded.
    Real {
        /// Non-missing count.
        count: f64,
        /// Σx.
        sum: f64,
        /// Σx².
        sum_sq: f64,
        /// Σ ln x over strictly positive values (for `PositiveReal`).
        sum_ln: f64,
        /// Σ (ln x)² over strictly positive values.
        sum_ln_sq: f64,
    },
    /// Discrete attribute: per-level non-missing counts.
    Discrete {
        /// `counts[l]` = number of items with level l.
        counts: Vec<f64>,
    },
}

/// Per-attribute global statistics for a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalStats {
    /// One entry per attribute, in schema order.
    pub attrs: Vec<AttrStats>,
    /// Total rows seen (including rows with some missing values).
    pub n: f64,
}

impl GlobalStats {
    /// Compute statistics over a view (a partition or the full dataset).
    pub fn compute(view: &DataView<'_>) -> Self {
        let schema = view.schema();
        let attrs = schema
            .attributes
            .iter()
            .enumerate()
            .map(|(c, attr)| match attr.kind {
                AttributeKind::Real { .. } | AttributeKind::PositiveReal { .. } => {
                    let mut count = 0.0;
                    let mut sum = 0.0;
                    let mut sum_sq = 0.0;
                    let mut sum_ln = 0.0;
                    let mut sum_ln_sq = 0.0;
                    for &x in view.real_column(c) {
                        if x.is_nan() {
                            continue;
                        }
                        count += 1.0;
                        sum += x;
                        sum_sq += x * x;
                        if x > 0.0 {
                            let l = x.ln();
                            sum_ln += l;
                            sum_ln_sq += l * l;
                        }
                    }
                    AttrStats::Real { count, sum, sum_sq, sum_ln, sum_ln_sq }
                }
                AttributeKind::Discrete { levels, .. } => {
                    let mut counts = vec![0.0; levels];
                    for &l in view.discrete_column(c) {
                        if (l as usize) < levels {
                            counts[l as usize] += 1.0;
                        }
                    }
                    AttrStats::Discrete { counts }
                }
            })
            .collect();
        GlobalStats { attrs, n: view.len() as f64 }
    }

    /// Merge another partition's statistics into this one (the Allreduce
    /// combination; commutative and associative).
    pub fn merge(&mut self, other: &GlobalStats) {
        assert_eq!(self.attrs.len(), other.attrs.len(), "stat arity mismatch");
        self.n += other.n;
        for (a, b) in self.attrs.iter_mut().zip(&other.attrs) {
            match (a, b) {
                (
                    AttrStats::Real { count, sum, sum_sq, sum_ln, sum_ln_sq },
                    AttrStats::Real { count: c2, sum: s2, sum_sq: q2, sum_ln: l2, sum_ln_sq: m2 },
                ) => {
                    *count += c2;
                    *sum += s2;
                    *sum_sq += q2;
                    *sum_ln += l2;
                    *sum_ln_sq += m2;
                }
                (AttrStats::Discrete { counts }, AttrStats::Discrete { counts: c2 }) => {
                    assert_eq!(counts.len(), c2.len(), "level count mismatch");
                    for (x, y) in counts.iter_mut().zip(c2) {
                        *x += y;
                    }
                }
                _ => panic!("attribute kind mismatch in stats merge"),
            }
        }
    }

    /// Flatten to an f64 vector (for Allreduce); [`Self::from_flat`]
    /// inverts this given the same schema shape.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut out = vec![self.n];
        for a in &self.attrs {
            match a {
                AttrStats::Real { count, sum, sum_sq, sum_ln, sum_ln_sq } => {
                    out.extend_from_slice(&[*count, *sum, *sum_sq, *sum_ln, *sum_ln_sq]);
                }
                AttrStats::Discrete { counts } => out.extend_from_slice(counts),
            }
        }
        out
    }

    /// Rebuild from a flat vector with the same shape as `template`.
    ///
    /// # Panics
    /// Panics if `flat`'s length does not match `template`'s shape (it
    /// always does when `flat` came from [`GlobalStats::to_flat`]).
    pub fn from_flat(template: &GlobalStats, flat: &[f64]) -> Self {
        let mut it = flat.iter().copied();
        let (n, attrs) = {
            // lint:allow(unwrap): shape mismatch against the template is a caller bug
            let mut next = || it.next().expect("flat stats shorter than template");
            let n = next();
            let attrs = template
                .attrs
                .iter()
                .map(|a| match a {
                    AttrStats::Real { .. } => AttrStats::Real {
                        count: next(),
                        sum: next(),
                        sum_sq: next(),
                        sum_ln: next(),
                        sum_ln_sq: next(),
                    },
                    AttrStats::Discrete { counts } => {
                        AttrStats::Discrete { counts: (0..counts.len()).map(|_| next()).collect() }
                    }
                })
                .collect();
            (n, attrs)
        };
        assert!(it.next().is_none(), "flat stats too long");
        GlobalStats { attrs, n }
    }

    /// Mean of a real attribute (0 when no data).
    pub fn mean(&self, c: usize) -> f64 {
        match &self.attrs[c] {
            AttrStats::Real { count, sum, .. } => {
                if *count > 0.0 {
                    sum / count
                } else {
                    0.0
                }
            }
            _ => panic!("attribute {c} is not real"),
        }
    }

    /// Population variance of a real attribute (0 when < 2 data points).
    pub fn variance(&self, c: usize) -> f64 {
        match &self.attrs[c] {
            AttrStats::Real { count, sum, sum_sq, .. } => {
                if *count < 2.0 {
                    return 0.0;
                }
                let m = sum / count;
                (sum_sq / count - m * m).max(0.0)
            }
            _ => panic!("attribute {c} is not real"),
        }
    }

    /// Mean of ln(x) for a positive-real attribute.
    pub fn ln_mean(&self, c: usize) -> f64 {
        match &self.attrs[c] {
            AttrStats::Real { count, sum_ln, .. } => {
                if *count > 0.0 {
                    sum_ln / count
                } else {
                    0.0
                }
            }
            _ => panic!("attribute {c} is not real"),
        }
    }

    /// Population variance of ln(x) for a positive-real attribute.
    pub fn ln_variance(&self, c: usize) -> f64 {
        match &self.attrs[c] {
            AttrStats::Real { count, sum_ln, sum_ln_sq, .. } => {
                if *count < 2.0 {
                    return 0.0;
                }
                let m = sum_ln / count;
                (sum_ln_sq / count - m * m).max(0.0)
            }
            _ => panic!("attribute {c} is not real"),
        }
    }

    /// Level frequencies of a discrete attribute (uniform when empty).
    pub fn level_freqs(&self, c: usize) -> Vec<f64> {
        match &self.attrs[c] {
            AttrStats::Discrete { counts } => {
                let total: f64 = counts.iter().sum();
                if total > 0.0 {
                    counts.iter().map(|x| x / total).collect()
                } else {
                    vec![1.0 / counts.len() as f64; counts.len()]
                }
            }
            _ => panic!("attribute {c} is not discrete"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::{Attribute, Schema};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::real("x", 0.1), Attribute::discrete("c", 2)]);
        Dataset::from_rows(
            schema,
            &[
                vec![Value::Real(1.0), Value::Discrete(0)],
                vec![Value::Real(3.0), Value::Discrete(1)],
                vec![Value::Missing, Value::Discrete(1)],
                vec![Value::Real(5.0), Value::Missing],
            ],
        )
    }

    #[test]
    fn computes_moments_ignoring_missing() {
        let d = dataset();
        let s = GlobalStats::compute(&d.full_view());
        assert_eq!(s.n, 4.0);
        assert!((s.mean(0) - 3.0).abs() < 1e-12);
        // population variance of {1,3,5} = 8/3
        assert!((s.variance(0) - 8.0 / 3.0).abs() < 1e-12);
        let f = s.level_freqs(1);
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((f[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_whole() {
        let d = dataset();
        let whole = GlobalStats::compute(&d.full_view());
        let mut left = GlobalStats::compute(&d.view(0, 2));
        let right = GlobalStats::compute(&d.view(2, 4));
        left.merge(&right);
        assert_eq!(left.n, whole.n);
        assert!((left.mean(0) - whole.mean(0)).abs() < 1e-12);
        assert!((left.variance(0) - whole.variance(0)).abs() < 1e-12);
        assert_eq!(left.level_freqs(1), whole.level_freqs(1));
    }

    #[test]
    fn flat_round_trip() {
        let d = dataset();
        let s = GlobalStats::compute(&d.full_view());
        let flat = s.to_flat();
        let back = GlobalStats::from_flat(&s, &flat);
        assert_eq!(back, s);
    }

    #[test]
    fn empty_dataset_degenerates_gracefully() {
        let schema = Schema::new(vec![Attribute::real("x", 0.1), Attribute::discrete("c", 3)]);
        let d = Dataset::from_rows(schema, &[]);
        let s = GlobalStats::compute(&d.full_view());
        assert_eq!(s.mean(0), 0.0);
        assert_eq!(s.variance(0), 0.0);
        assert_eq!(s.level_freqs(1), vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn ln_moments_for_positive_reals() {
        let schema = Schema::new(vec![Attribute::positive_real("m", 0.01)]);
        let d = Dataset::from_rows(
            schema,
            &[vec![Value::Real(1.0)], vec![Value::Real(std::f64::consts::E)]],
        );
        let s = GlobalStats::compute(&d.full_view());
        assert!((s.ln_mean(0) - 0.5).abs() < 1e-12);
        assert!((s.ln_variance(0) - 0.25).abs() < 1e-12);
    }
}
