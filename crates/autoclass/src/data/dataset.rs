//! Column-major dataset storage with missing values and zero-copy views.
//!
//! AutoClass reads the entire dataset once and then scans it every EM
//! cycle, so the hot layout is column-major: each attribute's values are
//! contiguous. Missing values use in-band sentinels (`NaN` for reals,
//! `u32::MAX` for discretes) so the hot loops need no side lookups.

use crate::data::schema::{AttributeKind, Schema};

/// Sentinel for a missing discrete value.
pub const MISSING_DISCRETE: u32 = u32::MAX;

/// One cell of a row during construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A real measurement.
    Real(f64),
    /// A categorical level index.
    Discrete(u32),
    /// Not recorded.
    Missing,
}

/// One column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Real values; missing entries are `NaN`.
    Real(Vec<f64>),
    /// Level indices; missing entries are [`MISSING_DISCRETE`].
    Discrete(Vec<u32>),
}

impl Column {
    fn len(&self) -> usize {
        match self {
            Column::Real(v) => v.len(),
            Column::Discrete(v) => v.len(),
        }
    }
}

/// An immutable, column-major dataset conforming to a [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    n: usize,
    columns: Vec<Column>,
}

impl Dataset {
    /// Build from rows of [`Value`]s.
    ///
    /// # Panics
    /// Panics if any row's arity or value kinds disagree with the schema,
    /// or a discrete value is out of range — dataset construction errors
    /// are programming/workload-definition errors here, not user input.
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> Self {
        let mut columns: Vec<Column> = schema
            .attributes
            .iter()
            .map(|a| match a.kind {
                AttributeKind::Real { .. } | AttributeKind::PositiveReal { .. } => {
                    Column::Real(Vec::with_capacity(rows.len()))
                }
                AttributeKind::Discrete { .. } => Column::Discrete(Vec::with_capacity(rows.len())),
            })
            .collect();
        for (ri, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), schema.len(), "row {ri} has wrong arity");
            for (ci, (value, attr)) in row.iter().zip(&schema.attributes).enumerate() {
                match (&mut columns[ci], value, &attr.kind) {
                    (Column::Real(col), Value::Real(x), AttributeKind::Real { .. }) => {
                        assert!(x.is_finite(), "row {ri} col {ci}: non-finite real");
                        col.push(*x);
                    }
                    (Column::Real(col), Value::Real(x), AttributeKind::PositiveReal { .. }) => {
                        assert!(
                            x.is_finite() && *x > 0.0,
                            "row {ri} col {ci}: PositiveReal must be finite and > 0"
                        );
                        col.push(*x);
                    }
                    (Column::Real(col), Value::Missing, _) => col.push(f64::NAN),
                    (
                        Column::Discrete(col),
                        Value::Discrete(l),
                        AttributeKind::Discrete { levels, .. },
                    ) => {
                        assert!(
                            (*l as usize) < *levels,
                            "row {ri} col {ci}: level {l} out of range (<{levels})"
                        );
                        col.push(*l);
                    }
                    (Column::Discrete(col), Value::Missing, _) => col.push(MISSING_DISCRETE),
                    _ => panic!("row {ri} col {ci}: value kind does not match schema"),
                }
            }
        }
        Dataset { n: rows.len(), schema, columns }
    }

    /// Build directly from columns (used by generators; avoids the row
    /// detour for large synthetic datasets).
    ///
    /// # Panics
    /// Panics on schema/column mismatch or ragged columns.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(columns.len(), schema.len(), "column count mismatch");
        let n = columns.first().map_or(0, Column::len);
        for (ci, (col, attr)) in columns.iter().zip(&schema.attributes).enumerate() {
            assert_eq!(col.len(), n, "column {ci} is ragged");
            match (col, &attr.kind) {
                (Column::Real(_), AttributeKind::Real { .. })
                | (Column::Real(_), AttributeKind::PositiveReal { .. })
                | (Column::Discrete(_), AttributeKind::Discrete { .. }) => {}
                _ => panic!("column {ci} kind does not match schema"),
            }
            if let (Column::Discrete(v), AttributeKind::Discrete { levels, .. }) = (col, &attr.kind)
            {
                for (ri, &l) in v.iter().enumerate() {
                    assert!(
                        l == MISSING_DISCRETE || (l as usize) < *levels,
                        "row {ri} col {ci}: level {l} out of range"
                    );
                }
            }
        }
        Dataset { n, schema, columns }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Borrow a column.
    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// A zero-copy view of rows `start..end` (a processor's partition).
    pub fn view(&self, start: usize, end: usize) -> DataView<'_> {
        assert!(start <= end && end <= self.n, "view {start}..{end} out of range 0..{}", self.n);
        DataView { data: self, start, end }
    }

    /// A view of the whole dataset.
    pub fn full_view(&self) -> DataView<'_> {
        self.view(0, self.n)
    }
}

/// A contiguous row range of a [`Dataset`]; the unit of data distribution
/// in P-AutoClass (each processor owns one block).
#[derive(Debug, Clone, Copy)]
pub struct DataView<'a> {
    data: &'a Dataset,
    start: usize,
    end: usize,
}

impl<'a> DataView<'a> {
    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Global row index of the view's first row.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The schema of the underlying dataset.
    pub fn schema(&self) -> &'a Schema {
        &self.data.schema
    }

    /// A view of the *entire* underlying dataset, regardless of this
    /// view's range. Used by drivers that designate one rank to process
    /// everything (e.g. the WtsOnly baseline's master step).
    pub fn whole_dataset(&self) -> DataView<'a> {
        self.data.full_view()
    }

    /// Real-valued slice of column `c` restricted to this view.
    ///
    /// # Panics
    /// Panics if column `c` is not real.
    pub fn real_column(&self, c: usize) -> &'a [f64] {
        match &self.data.columns[c] {
            Column::Real(v) => &v[self.start..self.end],
            Column::Discrete(_) => panic!("column {c} is discrete, not real"),
        }
    }

    /// Discrete slice of column `c` restricted to this view.
    ///
    /// # Panics
    /// Panics if column `c` is not discrete.
    pub fn discrete_column(&self, c: usize) -> &'a [u32] {
        match &self.data.columns[c] {
            Column::Discrete(v) => &v[self.start..self.end],
            Column::Real(_) => panic!("column {c} is real, not discrete"),
        }
    }
}

/// Block partition of `n` rows over `p` processors: contiguous ranges whose
/// sizes differ by at most one (remainder spread over the first ranks),
/// exactly covering `0..n`. This is the SPMD decomposition from the paper:
/// equal-sized blocks mean no load balancing is needed.
pub fn block_partition(n: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    assert!(p > 0, "need at least one processor");
    let base = n / p;
    let extra = n % p;
    (0..p)
        .map(|r| {
            let start = r * base + r.min(extra);
            let len = base + usize::from(r < extra);
            start..start + len
        })
        .collect()
}

/// Contiguous partition of `n` rows proportional to `weights` (e.g.
/// relative processor speeds on a heterogeneous machine), exactly covering
/// `0..n`. Shares are `floor(n·w_r/Σw)` with the remainder given to the
/// ranks with the largest fractional parts (largest-remainder method), so
/// sizes deviate from the exact proportion by less than one row.
pub fn weighted_partition(n: usize, weights: &[f64]) -> Vec<std::ops::Range<usize>> {
    assert!(!weights.is_empty(), "need at least one processor");
    assert!(
        weights.iter().all(|&w| w.is_finite() && w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "at least one weight must be positive");
    let p = weights.len();
    let mut sizes: Vec<usize> = Vec::with_capacity(p);
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(p);
    let mut assigned = 0usize;
    for (r, &w) in weights.iter().enumerate() {
        let exact = n as f64 * w / total;
        let base = exact.floor() as usize;
        sizes.push(base);
        assigned += base;
        fracs.push((r, exact - base as f64));
    }
    // Hand out the remaining rows to the largest fractional parts
    // (ties broken by rank for determinism).
    fracs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(r, _) in fracs.iter().take(n - assigned) {
        sizes[r] += 1;
    }
    let mut start = 0;
    sizes
        .into_iter()
        .map(|len| {
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::schema::Attribute;

    fn small() -> Dataset {
        let schema = Schema::new(vec![Attribute::real("x", 0.1), Attribute::discrete("c", 3)]);
        Dataset::from_rows(
            schema,
            &[
                vec![Value::Real(1.0), Value::Discrete(0)],
                vec![Value::Real(2.0), Value::Missing],
                vec![Value::Missing, Value::Discrete(2)],
                vec![Value::Real(4.0), Value::Discrete(1)],
            ],
        )
    }

    #[test]
    fn round_trips_values_and_missing() {
        let d = small();
        assert_eq!(d.len(), 4);
        let v = d.full_view();
        let xs = v.real_column(0);
        assert_eq!(xs[0], 1.0);
        assert!(xs[2].is_nan());
        let cs = v.discrete_column(1);
        assert_eq!(cs[0], 0);
        assert_eq!(cs[1], MISSING_DISCRETE);
        assert_eq!(cs[3], 1);
    }

    #[test]
    fn views_restrict_rows() {
        let d = small();
        let v = d.view(1, 3);
        assert_eq!(v.len(), 2);
        assert_eq!(v.start(), 1);
        assert_eq!(v.real_column(0)[0], 2.0);
        assert_eq!(v.discrete_column(1)[1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn view_bounds_checked() {
        small().view(2, 9);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn ragged_rows_rejected() {
        let schema = Schema::reals(2, 0.1);
        Dataset::from_rows(schema, &[vec![Value::Real(1.0)]]);
    }

    #[test]
    #[should_panic(expected = "level 7 out of range")]
    fn out_of_range_level_rejected() {
        let schema = Schema::new(vec![Attribute::discrete("c", 3)]);
        Dataset::from_rows(schema, &[vec![Value::Discrete(7)]]);
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn kind_mismatch_rejected() {
        let schema = Schema::new(vec![Attribute::discrete("c", 3)]);
        Dataset::from_rows(schema, &[vec![Value::Real(1.0)]]);
    }

    #[test]
    fn from_columns_checks_shape() {
        let schema = Schema::new(vec![Attribute::real("x", 0.1)]);
        let d = Dataset::from_columns(schema, vec![Column::Real(vec![1.0, 2.0])]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_columns_rejects_ragged() {
        let schema = Schema::new(vec![Attribute::real("x", 0.1), Attribute::real("y", 0.1)]);
        Dataset::from_columns(schema, vec![Column::Real(vec![1.0, 2.0]), Column::Real(vec![1.0])]);
    }

    #[test]
    fn weighted_partition_is_proportional_and_exact() {
        for n in [0usize, 1, 10, 997] {
            let weights = [1.0, 2.0, 1.0, 4.0];
            let parts = weighted_partition(n, &weights);
            assert_eq!(parts.len(), 4);
            let mut next = 0;
            for r in &parts {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n, "n={n}");
            // Proportionality within one row.
            let total: f64 = weights.iter().sum();
            for (r, w) in parts.iter().zip(&weights) {
                let exact = n as f64 * w / total;
                assert!(
                    (r.len() as f64 - exact).abs() < 1.0,
                    "n={n}: {} vs exact {exact}",
                    r.len()
                );
            }
        }
    }

    #[test]
    fn weighted_partition_with_equal_weights_matches_block() {
        for n in [0usize, 7, 100, 103] {
            for p in [1usize, 3, 7] {
                let a = weighted_partition(n, &vec![1.0; p]);
                let b = block_partition(n, p);
                let sa: Vec<usize> = a.iter().map(|r| r.len()).collect();
                let mut sb: Vec<usize> = b.iter().map(|r| r.len()).collect();
                // Both spread the remainder, possibly to different ranks;
                // the multisets of sizes must agree.
                let mut sa = sa;
                sa.sort_unstable();
                sb.sort_unstable();
                assert_eq!(sa, sb, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn weighted_partition_zero_weight_rank_gets_nothing() {
        let parts = weighted_partition(100, &[1.0, 0.0, 1.0]);
        assert_eq!(parts[1].len(), 0);
        assert_eq!(parts[0].len() + parts[2].len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one weight must be positive")]
    fn weighted_partition_rejects_all_zero() {
        weighted_partition(10, &[0.0, 0.0]);
    }

    #[test]
    fn block_partition_covers_exactly() {
        for n in [0usize, 1, 7, 100, 101, 109] {
            for p in [1usize, 2, 3, 7, 10] {
                let parts = block_partition(n, p);
                assert_eq!(parts.len(), p);
                let mut next = 0;
                for r in &parts {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} p={p}");
                let sizes: Vec<usize> = parts.iter().map(|r| r.len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} p={p}: sizes {sizes:?}");
            }
        }
    }
}
