//! Dataset representation: schemas, column-major storage, views, global
//! statistics, and CSV I/O.

pub mod csv;
pub mod dataset;
pub mod schema;
pub mod stats;

pub use csv::{read_csv, write_csv, CsvError};
pub use dataset::{
    block_partition, weighted_partition, Column, DataView, Dataset, Value, MISSING_DISCRETE,
};
pub use schema::{Attribute, AttributeKind, Schema};
pub use stats::{AttrStats, GlobalStats};
