//! Human-readable classification reports with influence values.
//!
//! AutoClass's reports rank, per class, the attributes by "influence": how
//! much the class's distribution of that attribute diverges from the
//! global distribution. We compute influence as the KL divergence from the
//! class term to a reference term fitted to the whole dataset.

use std::fmt;

use crate::data::schema::AttributeKind;
use crate::model::{ClassParams, Model, TermParams};
use crate::search::Classification;

/// Influence of one attribute in one class.
#[derive(Debug, Clone, PartialEq)]
pub struct Influence {
    /// Attribute index.
    pub attr: usize,
    /// Attribute name.
    pub name: String,
    /// KL divergence from the class distribution to the global one (≥ 0).
    pub value: f64,
}

/// KL(N(m1,s1²) ‖ N(m0,s0²)).
fn kl_normal(m1: f64, s1: f64, m0: f64, s0: f64) -> f64 {
    (s0 / s1).ln() + (s1 * s1 + (m1 - m0).powi(2)) / (2.0 * s0 * s0) - 0.5
}

/// KL(q ‖ g) for discrete distributions given as log probabilities (q) and
/// probabilities (g).
fn kl_discrete(log_q: &[f64], g: &[f64]) -> f64 {
    log_q
        .iter()
        .zip(g)
        .map(|(&lq, &gl)| {
            let q = lq.exp();
            if q > 0.0 && gl > 0.0 {
                q * (lq - gl.ln())
            } else {
                0.0
            }
        })
        .sum()
}

/// KL(N(μ1,Σ1) ‖ N(μ0,Σ0)) for correlated blocks, from Cholesky factors.
fn kl_mvn(m1: &[f64], l1: &[f64], m0: &[f64], l0: &[f64]) -> f64 {
    let d = m1.len();
    let sigma1 = {
        // Σ1 = L1·L1ᵀ
        let mut s = vec![0.0; d * d];
        for i in 0..d {
            for j in 0..d {
                let mut v = 0.0;
                for k in 0..d {
                    v += l1[i * d + k] * l1[j * d + k];
                }
                s[i * d + j] = v;
            }
        }
        s
    };
    let inv0 = crate::linalg::inverse_from_chol(l0, d);
    let trace = crate::linalg::trace_product(&inv0, &sigma1, d);
    let diff: Vec<f64> = m0.iter().zip(m1).map(|(a, b)| a - b).collect();
    let mut scratch = vec![0.0; d];
    let maha = crate::linalg::mahalanobis_sq(l0, d, &diff, &mut scratch);
    let log_det0 = crate::linalg::log_det_from_chol(l0, d);
    let log_det1 = crate::linalg::log_det_from_chol(l1, d);
    0.5 * (trace + maha - d as f64 + log_det0 - log_det1)
}

/// Reference ("global") term parameters for a group: one class fit to
/// everything.
fn global_term(
    model: &Model,
    stats: &crate::data::stats::GlobalStats,
    group: &crate::model::class::TermGroup,
) -> TermParams {
    let k = group.attrs[0];
    match &group.prior {
        crate::model::TermPrior::MultiNormal { dim, .. } => {
            let d = *dim;
            let mean: Vec<f64> = group.attrs.iter().map(|&a| stats.mean(a)).collect();
            let mut cov = vec![0.0; d * d];
            for (i, &a) in group.attrs.iter().enumerate() {
                cov[i * d + i] = stats.variance(a).max(1e-12);
            }
            TermParams::multi_normal(mean, &cov, 0.0)
        }
        _ => match &model.schema.attributes[k].kind {
            AttributeKind::Real { error } => {
                TermParams::normal(stats.mean(k), stats.variance(k).sqrt().max(*error))
            }
            AttributeKind::PositiveReal { error } => {
                TermParams::log_normal(stats.ln_mean(k), stats.ln_variance(k).sqrt().max(*error))
            }
            AttributeKind::Discrete { .. } => {
                let mut f = stats.level_freqs(k);
                if matches!(
                    &group.prior,
                    crate::model::TermPrior::Multinomial { missing_level: true, .. }
                ) {
                    // Rescale observed frequencies by the observed share
                    // and append the global missing frequency.
                    let observed: f64 = match &stats.attrs[k] {
                        crate::data::AttrStats::Discrete { counts } => counts.iter().sum(),
                        _ => unreachable!("discrete attribute"),
                    };
                    let n = stats.n.max(1.0);
                    let p_missing = ((n - observed) / n).max(0.0);
                    for v in &mut f {
                        *v *= 1.0 - p_missing;
                    }
                    f.push(p_missing);
                }
                TermParams::Multinomial { log_p: f.iter().map(|p| p.max(1e-300).ln()).collect() }
            }
        },
    }
}

/// Human-readable name of a group (attribute name, or names joined by ×
/// for a correlated block).
fn group_name(model: &Model, group: &crate::model::class::TermGroup) -> String {
    if group.attrs.len() == 1 {
        model.schema.attributes[group.attrs[0]].name.clone()
    } else {
        group
            .attrs
            .iter()
            .map(|&a| model.schema.attributes[a].name.as_str())
            .collect::<Vec<_>>()
            .join("×")
    }
}

/// KL divergence between two classes' term distributions for one group.
fn term_kl(a: &TermParams, b: &TermParams) -> f64 {
    match (a, b) {
        (
            TermParams::Normal { mean: m1, sigma: s1, .. },
            TermParams::Normal { mean: m0, sigma: s0, .. },
        )
        | (
            TermParams::LogNormal { mean: m1, sigma: s1, .. },
            TermParams::LogNormal { mean: m0, sigma: s0, .. },
        ) => kl_normal(*m1, *s1, *m0, *s0),
        (TermParams::Multinomial { log_p }, TermParams::Multinomial { log_p: lg }) => {
            let g: Vec<f64> = lg.iter().map(|l| l.exp()).collect();
            kl_discrete(log_p, &g)
        }
        (
            TermParams::MultiNormal { mean: m1, chol: l1, .. },
            TermParams::MultiNormal { mean: m0, chol: l0, .. },
        ) => kl_mvn(m1, l1, m0, l0),
        _ => panic!("classes of one classification share term kinds"),
    }
}

/// Symmetrized divergence between two classes: ½(KL(a‖b) + KL(b‖a)),
/// summed over term groups (attributes are conditionally independent
/// given the class, so the divergences add). Near 0 means the classes
/// overlap heavily — the well-definedness criterion the paper's §2
/// discusses (memberships around 0.5 vs around 0.99).
pub fn class_divergence(a: &ClassParams, b: &ClassParams) -> f64 {
    a.terms.iter().zip(&b.terms).map(|(ta, tb)| 0.5 * (term_kl(ta, tb) + term_kl(tb, ta))).sum()
}

/// Pairwise symmetric divergence matrix over a classification's classes.
pub fn divergence_matrix(classes: &[ClassParams]) -> Vec<Vec<f64>> {
    let j = classes.len();
    let mut m = vec![vec![0.0; j]; j];
    for a in 0..j {
        for b in a + 1..j {
            let d = class_divergence(&classes[a], &classes[b]);
            m[a][b] = d;
            m[b][a] = d;
        }
    }
    m
}

/// Influence values of one class, sorted by decreasing influence.
pub fn class_influences(
    model: &Model,
    stats: &crate::data::stats::GlobalStats,
    class: &ClassParams,
) -> Vec<Influence> {
    let mut out: Vec<Influence> = class
        .terms
        .iter()
        .zip(&model.groups)
        .map(|(term, group)| {
            let global = global_term(model, stats, group);
            let value = match (term, &global) {
                (
                    TermParams::Normal { mean: m1, sigma: s1, .. },
                    TermParams::Normal { mean: m0, sigma: s0, .. },
                )
                | (
                    TermParams::LogNormal { mean: m1, sigma: s1, .. },
                    TermParams::LogNormal { mean: m0, sigma: s0, .. },
                ) => kl_normal(*m1, *s1, *m0, *s0),
                (TermParams::Multinomial { log_p }, TermParams::Multinomial { log_p: lg }) => {
                    let g: Vec<f64> = lg.iter().map(|l| l.exp()).collect();
                    kl_discrete(log_p, &g)
                }
                (
                    TermParams::MultiNormal { mean: m1, chol: l1, .. },
                    TermParams::MultiNormal { mean: m0, chol: l0, .. },
                ) => kl_mvn(m1, l1, m0, l0),
                _ => unreachable!("class and global terms share a kind"),
            };
            Influence { attr: group.attrs[0], name: group_name(model, group), value }
        })
        .collect();
    out.sort_by(|a, b| b.value.total_cmp(&a.value));
    out
}

/// A full printable report for a classification.
#[derive(Debug, Clone)]
pub struct Report {
    /// Per-class summaries, heaviest class first.
    pub classes: Vec<ClassReport>,
    /// Final scores of the classification.
    pub cs_score: f64,
    /// Log likelihood at MAP.
    pub log_likelihood: f64,
    /// EM cycles and convergence status.
    pub cycles: usize,
    /// Whether the convergence criterion fired.
    pub converged: bool,
}

/// One class's entry in the report.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Expected item count.
    pub weight: f64,
    /// Mixture proportion.
    pub pi: f64,
    /// Attribute influences, most influential first.
    pub influences: Vec<Influence>,
    /// Textual parameter summaries per attribute, in schema order.
    pub params: Vec<String>,
}

/// Build a report from a finished classification.
pub fn report(
    model: &Model,
    stats: &crate::data::stats::GlobalStats,
    c: &Classification,
) -> Report {
    let classes = c
        .classes
        .iter()
        .map(|class| {
            let params = class
                .terms
                .iter()
                .zip(&model.groups)
                .map(|(t, g)| {
                    let name = group_name(model, g);
                    match t {
                        TermParams::Normal { mean, sigma, .. } => {
                            format!("{name} ~ N({mean:.4}, {sigma:.4})")
                        }
                        TermParams::LogNormal { mean, sigma, .. } => {
                            format!("ln {name} ~ N({mean:.4}, {sigma:.4})")
                        }
                        TermParams::Multinomial { log_p } => {
                            let probs: Vec<String> =
                                log_p.iter().map(|l| format!("{:.3}", l.exp())).collect();
                            format!("{name} ~ Mult[{}]", probs.join(", "))
                        }
                        TermParams::MultiNormal { mean, chol, .. } => {
                            let d = mean.len();
                            let means: Vec<String> =
                                mean.iter().map(|m| format!("{m:.3}")).collect();
                            // Report the correlation of the first pair as a
                            // quick summary; the full factor is in the params.
                            let var = |i: usize| -> f64 {
                                (0..d).map(|k| chol[i * d + k] * chol[i * d + k]).sum()
                            };
                            let cov01: f64 = (0..d).map(|k| chol[k] * chol[d + k]).sum();
                            let rho = cov01 / (var(0) * var(1)).sqrt();
                            format!("{name} ~ MVN(mean [{}], ρ01 {rho:.3})", means.join(", "))
                        }
                    }
                })
                .collect();
            ClassReport {
                weight: class.weight,
                pi: class.pi,
                influences: class_influences(model, stats, class),
                params,
            }
        })
        .collect();
    Report {
        classes,
        cs_score: c.score(),
        log_likelihood: c.approx.log_likelihood,
        cycles: c.cycles,
        converged: c.converged,
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CLASSIFICATION: {} classes", self.classes.len())?;
        writeln!(
            f,
            "  CS score {:.3}  log-likelihood {:.3}  cycles {}{}",
            self.cs_score,
            self.log_likelihood,
            self.cycles,
            if self.converged { " (converged)" } else { " (cycle cap)" }
        )?;
        for (i, c) in self.classes.iter().enumerate() {
            writeln!(f, "  CLASS {i}: weight {:.1}  pi {:.4}", c.weight, c.pi)?;
            for p in &c.params {
                writeln!(f, "    {p}")?;
            }
            for inf in &c.influences {
                writeln!(f, "    influence {}: {:.4}", inf.name, inf.value)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::dataset::{Dataset, Value};
    use crate::data::schema::Schema;
    use crate::data::stats::GlobalStats;
    use crate::search::{search, SearchConfig};

    fn two_blob_data() -> Dataset {
        let schema = Schema::reals(2, 0.05);
        let mut rows = Vec::new();
        for i in 0..120 {
            let a = (i as f64 * 0.9).sin() * 0.5;
            // x0 separates the blobs; x1 is identical noise in both.
            let c = if i % 2 == 0 { -6.0 } else { 6.0 };
            rows.push(vec![Value::Real(c + a), Value::Real(a)]);
        }
        Dataset::from_rows(schema, &rows)
    }

    #[test]
    fn kl_normal_basics() {
        assert!(kl_normal(0.0, 1.0, 0.0, 1.0).abs() < 1e-12);
        assert!(kl_normal(3.0, 1.0, 0.0, 1.0) > 1.0);
        assert!(kl_normal(0.0, 0.5, 0.0, 1.0) > 0.0);
    }

    #[test]
    fn kl_discrete_basics() {
        let lq = [(0.5f64).ln(), (0.5f64).ln()];
        assert!(kl_discrete(&lq, &[0.5, 0.5]).abs() < 1e-12);
        let skew = [(0.9f64).ln(), (0.1f64).ln()];
        assert!(kl_discrete(&skew, &[0.5, 0.5]) > 0.1);
    }

    #[test]
    fn influence_ranks_the_separating_attribute_first() {
        let data = two_blob_data();
        let result = search(&data.full_view(), &SearchConfig::quick(vec![2], 11));
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &stats);
        let rep = report(&model, &stats, &result.best);
        assert_eq!(rep.classes.len(), 2);
        for c in &rep.classes {
            assert_eq!(c.influences[0].name, "x0", "x0 separates the blobs");
            assert!(c.influences[0].value > c.influences[1].value);
        }
    }

    #[test]
    fn divergence_matrix_is_symmetric_zero_diagonal() {
        let data = two_blob_data();
        let result = search(&data.full_view(), &SearchConfig::quick(vec![2], 11));
        let m = divergence_matrix(&result.best.classes);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0][0], 0.0);
        assert_eq!(m[1][1], 0.0);
        assert_eq!(m[0][1], m[1][0]);
        // The blobs are 12 units apart at sigma ~1: hugely divergent.
        assert!(m[0][1] > 5.0, "{}", m[0][1]);
    }

    #[test]
    fn overlapping_classes_have_small_divergence() {
        use crate::model::prior::TermParams;
        let a = crate::model::ClassParams::new(
            1.0,
            0.5,
            vec![TermParams::normal(0.0, 1.0), TermParams::normal(1.0, 2.0)],
        );
        let b = crate::model::ClassParams::new(
            1.0,
            0.5,
            vec![TermParams::normal(0.1, 1.0), TermParams::normal(1.0, 2.0)],
        );
        let d = class_divergence(&a, &b);
        assert!(d < 0.01, "{d}");
        assert_eq!(class_divergence(&a, &a), 0.0);
    }

    #[test]
    fn report_displays_without_panicking() {
        let data = two_blob_data();
        let result = search(&data.full_view(), &SearchConfig::quick(vec![2], 11));
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &stats);
        let rep = report(&model, &stats, &result.best);
        let text = rep.to_string();
        assert!(text.contains("CLASSIFICATION: 2 classes"));
        assert!(text.contains("CLASS 0"));
        assert!(text.contains("influence x0"));
    }
}
