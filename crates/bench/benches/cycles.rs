//! Criterion benchmarks of full parallel base cycles — the unit of work
//! behind Figures 6–8 — at several simulated processor counts and for
//! every strategy, plus the k-means baseline cycle for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kmeans::{kmeans_parallel, KMeansConfig};
use mpsim::presets;
use pautoclass::{run_fixed_j, Exchange, ParallelConfig, Strategy};

fn bench_parallel_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_base_cycle");
    group.sample_size(10);
    let n = 5_000;
    let data = datagen::paper_dataset(n, 1);
    for &p in &[1usize, 4, 10] {
        let machine = presets::meiko_cs2(p);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("p{p}")), &(), |b, _| {
            b.iter(|| {
                run_fixed_j(&data, &machine, 8, 2, 7, &ParallelConfig::default()).unwrap().per_cycle
            });
        });
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_cycle");
    group.sample_size(10);
    let data = datagen::paper_dataset(4_000, 1);
    let machine = presets::meiko_cs2(4);
    for (name, strategy) in [
        ("full_perterm", Strategy::Full { exchange: Exchange::PerTerm }),
        ("full_fused", Strategy::Full { exchange: Exchange::Fused }),
        ("wts_only", Strategy::WtsOnly),
    ] {
        let config = ParallelConfig { strategy, ..ParallelConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| run_fixed_j(&data, &machine, 8, 2, 7, &config).unwrap().per_cycle);
        });
    }
    group.finish();
}

fn bench_kmeans_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_cycle");
    group.sample_size(10);
    let data = datagen::paper_dataset(5_000, 1);
    for &p in &[1usize, 10] {
        let machine = presets::meiko_cs2(p);
        let config = KMeansConfig { k: 8, max_iters: 2, tol: 0.0, seed: 7 };
        group.bench_with_input(BenchmarkId::from_parameter(format!("p{p}")), &(), |b, _| {
            b.iter(|| kmeans_parallel(&data, &machine, &config).unwrap().elapsed);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_cycle, bench_strategies, bench_kmeans_baseline);
criterion_main!(benches);
