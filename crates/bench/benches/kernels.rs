//! Criterion microbenchmarks of the hot kernels behind every figure:
//! `update_wts` (E-step) and statistics accumulation + MAP update
//! (M-step). These are the two functions the paper identifies as ~99.5 %
//! of AutoClass runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use autoclass::data::GlobalStats;
use autoclass::model::{
    init_classes, stats_to_classes, update_wts, update_wts_into, update_wts_naive, EStepScratch,
    Model, StatLayout, SuffStats, WtsMatrix,
};

fn bench_estep(c: &mut Criterion) {
    let mut group = c.benchmark_group("estep");
    group.sample_size(20);
    for &(n, j) in &[(2_000usize, 8usize), (2_000, 32), (10_000, 8)] {
        let data = datagen::paper_dataset(n, 1);
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &stats);
        let classes = init_classes(&model, &data.full_view(), j, 7);
        let mut wts = WtsMatrix::new(0, 0);
        let mut scratch = EStepScratch::default();
        group.throughput(Throughput::Elements((n * j) as u64));
        // The retained pre-blocking reference kernel…
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("naive_n{n}_j{j}")),
            &(),
            |b, _| {
                b.iter(|| update_wts_naive(&model, &data.full_view(), &classes, &mut wts));
            },
        );
        // …versus the cache-blocked fused kernel with a reused workspace.
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("blocked_n{n}_j{j}")),
            &(),
            |b, _| {
                b.iter(|| {
                    update_wts_into(&model, &data.full_view(), &classes, &mut wts, &mut scratch)
                });
            },
        );
    }
    group.finish();
}

fn bench_mstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("mstep");
    group.sample_size(20);
    for &(n, j) in &[(2_000usize, 8usize), (10_000, 8)] {
        let data = datagen::paper_dataset(n, 1);
        let gstats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &gstats);
        let classes = init_classes(&model, &data.full_view(), j, 7);
        let mut wts = WtsMatrix::new(0, 0);
        update_wts(&model, &data.full_view(), &classes, &mut wts);
        group.throughput(Throughput::Elements((n * j) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_j{j}")), &(), |b, _| {
            b.iter(|| {
                let mut stats = SuffStats::zeros(StatLayout::new(&model, j));
                stats.accumulate(&model, &data.full_view(), &wts);
                stats_to_classes(&model, &stats)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estep, bench_mstep);
criterion_main!(benches);
