//! Criterion benchmarks of the simulated collectives (host cost of the
//! substrate itself): Allreduce algorithms across message sizes at P=8.
//! Complements the `ablation_allreduce` harness, which reports *virtual*
//! costs; this one keeps the simulator's own overhead visible and bounded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpsim::{presets, run_spmd_default, AllreduceAlgo, ReduceOp};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_host");
    group.sample_size(10);
    let spec = presets::zero_cost(8);
    for &n in &[64usize, 4_096] {
        for (name, algo) in [
            ("linear", AllreduceAlgo::Linear),
            ("rd", AllreduceAlgo::RecursiveDoubling),
            ("ring", AllreduceAlgo::Ring),
            ("rab", AllreduceAlgo::Rabenseifner),
            ("auto", AllreduceAlgo::Auto),
        ] {
            group.throughput(Throughput::Bytes((n * 8) as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{name}_{n}")),
                &(),
                |b, _| {
                    b.iter(|| {
                        run_spmd_default(&spec, |comm| {
                            let mut buf = vec![comm.rank() as f64; n];
                            comm.allreduce_f64s_with(&mut buf, ReduceOp::Sum, algo);
                            buf[0]
                        })
                        .unwrap()
                        .per_rank[0]
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_spmd_launch(c: &mut Criterion) {
    // Fixed cost of spinning up/tearing down an SPMD world — bounds how
    // small a simulated experiment can usefully be.
    let mut group = c.benchmark_group("spmd_launch");
    group.sample_size(10);
    for &p in &[1usize, 4, 10] {
        let spec = presets::zero_cost(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &(), |b, _| {
            b.iter(|| run_spmd_default(&spec, |comm| comm.rank()).unwrap().per_rank.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_spmd_launch);
criterion_main!(benches);
