//! # bench — experiment harnesses for the P-AutoClass reproduction
//!
//! Shared machinery for the figure-regenerating binaries (`fig6`, `fig7`,
//! `fig8`, `profile_phases`, `ablation_strategy`, `ablation_allreduce`,
//! `seq_scaling`) and the Criterion benches. Each binary prints the same
//! rows/series as the corresponding figure or claim in the paper;
//! EXPERIMENTS.md records paper-vs-measured values.
//!
//! All experiments run the real parallel algorithm on the simulated Meiko
//! CS-2 (`mpsim::presets::meiko_cs2`); elapsed times are deterministic
//! virtual seconds.

#![warn(missing_docs)]

use autoclass::search::SearchConfig;
use mpsim::presets;
use pautoclass::{run_search_with, ParallelConfig, ParallelOutcome, Strategy};

/// The dataset sizes of the paper's Figures 6–7 (tuples of two reals).
pub const PAPER_SIZES: &[usize] = &[5_000, 10_000, 20_000, 40_000, 60_000, 80_000, 100_000];

/// Processor counts of the paper's experiments (Meiko CS-2, up to 10).
pub const PAPER_PROCS: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// One full experiment grid: elapsed time of a search for each
/// (dataset size, processor count) pair.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Dataset sizes (tuples).
    pub sizes: Vec<usize>,
    /// Processor counts.
    pub procs: Vec<usize>,
    /// Search settings used at every grid point.
    pub search: SearchConfig,
    /// Parallelization strategy.
    pub strategy: Strategy,
    /// Dataset seed.
    pub data_seed: u64,
}

impl GridConfig {
    /// The reduced default grid: the paper's sizes and processor counts,
    /// but a shortened `start_j_list` and a cycle cap so the whole grid
    /// runs in minutes on one host core. Shapes (who wins, where speedup
    /// saturates) are preserved; absolute times scale down accordingly.
    pub fn quick() -> Self {
        GridConfig {
            sizes: PAPER_SIZES.to_vec(),
            procs: PAPER_PROCS.to_vec(),
            search: SearchConfig {
                start_j_list: vec![2, 4, 8, 16],
                tries_per_j: 1,
                max_cycles: 10,
                rel_delta_ll: 0.0,     // fixed cycle count: comparable times
                min_class_weight: 0.0, // no class death: stable J per run
                seed: 0xF16,
                max_stored: 4,
            },
            strategy: Strategy::default(),
            data_seed: 0xDA7A,
        }
    }

    /// The paper's full configuration: `start_j_list = 2,4,8,16,24,50,64`.
    /// Expect a long run; use `quick()` unless regenerating final numbers.
    pub fn full() -> Self {
        let mut g = GridConfig::quick();
        g.search.start_j_list = vec![2, 4, 8, 16, 24, 50, 64];
        g.search.max_cycles = 20;
        g
    }
}

/// Elapsed virtual time (seconds) of every grid point:
/// `result[size_idx][proc_idx]`.
pub fn run_grid(cfg: &GridConfig) -> Vec<Vec<f64>> {
    cfg.sizes
        .iter()
        .map(|&n| {
            let data = datagen::paper_dataset(n, cfg.data_seed);
            cfg.procs.iter().map(|&p| run_one(&data, p, cfg).elapsed).collect()
        })
        .collect()
}

/// Run one grid point and return the full outcome.
pub fn run_one(data: &autoclass::data::Dataset, p: usize, cfg: &GridConfig) -> ParallelOutcome {
    let machine = presets::meiko_cs2(p);
    let pc = ParallelConfig {
        search: cfg.search.clone(),
        strategy: cfg.strategy,
        ..ParallelConfig::default()
    };
    let opts = mpsim::SimOptions {
        recv_timeout: std::time::Duration::from_secs(600),
        ..Default::default()
    };
    // lint:allow(unwrap): bench harness; a failed simulation should abort the run
    run_search_with(data, &machine, &pc, &opts).expect("simulated run failed")
}

/// Format seconds as the paper's `h.mm.ss` axis labels.
pub fn fmt_hms(secs: f64) -> String {
    let total = secs.round().max(0.0) as u64;
    let h = total / 3600;
    let m = (total % 3600) / 60;
    let s = total % 60;
    format!("{h}.{m:02}.{s:02}")
}

/// Print a labeled table: rows = sizes, columns = processor counts.
pub fn print_table(title: &str, sizes: &[usize], procs: &[usize], cells: &[Vec<String>]) {
    println!("{title}");
    print!("{:>12}", "tuples\\procs");
    for p in procs {
        print!("{p:>10}");
    }
    println!();
    for (row, &n) in cells.iter().zip(sizes) {
        print!("{n:>12}");
        for cell in row {
            print!("{cell:>10}");
        }
        println!();
    }
}

/// Parse harness CLI args: `--full` switches to the paper's full
/// configuration, `--sizes a,b,c` and `--procs a,b,c` override the grid.
pub fn grid_from_args(args: &[String]) -> GridConfig {
    let mut cfg =
        if args.iter().any(|a| a == "--full") { GridConfig::full() } else { GridConfig::quick() };
    let list_after = |flag: &str| -> Option<Vec<usize>> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad {flag} value {s:?}")))
                .collect()
        })
    };
    if let Some(sizes) = list_after("--sizes") {
        cfg.sizes = sizes;
    }
    if let Some(procs) = list_after("--procs") {
        cfg.procs = procs;
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hms_formatting() {
        assert_eq!(fmt_hms(0.0), "0.00.00");
        assert_eq!(fmt_hms(61.0), "0.01.01");
        assert_eq!(fmt_hms(3723.4), "1.02.03");
        assert_eq!(fmt_hms(-5.0), "0.00.00");
    }

    #[test]
    fn quick_grid_covers_paper_axes() {
        let g = GridConfig::quick();
        assert_eq!(g.sizes, PAPER_SIZES);
        assert_eq!(g.procs.len(), 10);
    }

    #[test]
    fn args_override_grid() {
        let args: Vec<String> =
            ["--sizes", "100,200", "--procs", "1,2"].iter().map(|s| s.to_string()).collect();
        let g = grid_from_args(&args);
        assert_eq!(g.sizes, vec![100, 200]);
        assert_eq!(g.procs, vec![1, 2]);
    }

    #[test]
    fn tiny_grid_runs() {
        let mut g = GridConfig::quick();
        g.sizes = vec![300];
        g.procs = vec![1, 3];
        g.search.start_j_list = vec![2];
        g.search.max_cycles = 3;
        let cells = run_grid(&g);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].len(), 2);
        assert!(cells[0].iter().all(|&t| t > 0.0));
    }
}
