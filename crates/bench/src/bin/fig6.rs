//! Figure 6: average elapsed times of P-AutoClass on different numbers of
//! processors, for dataset sizes 5 000 – 100 000 tuples (two real
//! attributes each).
//!
//! Usage: `cargo run -p bench --bin fig6 --release [--full]
//!         [--sizes 5000,20000] [--procs 1,2,4]`
//!
//! `--full` uses the paper's start_j_list (2,4,8,16,24,50,64); the default
//! quick grid shortens the model search but keeps the scaling shape.

use bench::{fmt_hms, grid_from_args, print_table, run_grid};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = grid_from_args(&args);
    eprintln!(
        "fig6: elapsed times on simulated Meiko CS-2; sizes={:?} procs={:?} start_j_list={:?}",
        cfg.sizes, cfg.procs, cfg.search.start_j_list
    );
    let elapsed = run_grid(&cfg);
    let cells: Vec<Vec<String>> =
        elapsed.iter().map(|row| row.iter().map(|&t| fmt_hms(t)).collect()).collect();
    print_table(
        "Fig 6 — average elapsed times [h.mm.ss, virtual] of P-AutoClass",
        &cfg.sizes,
        &cfg.procs,
        &cells,
    );
    println!();
    let cells_s: Vec<Vec<String>> =
        elapsed.iter().map(|row| row.iter().map(|&t| format!("{t:.1}")).collect()).collect();
    print_table("(same data, seconds)", &cfg.sizes, &cfg.procs, &cells_s);
}
