//! A-imbalance: the paper argues its equal-block decomposition "does not
//! have load balancing problems because each processor executes the same
//! code on data of equal size" — which assumes homogeneous processors.
//! This ablation quantifies what happens when that assumption breaks
//! (one slow node) and shows that speed-proportional partitioning
//! restores the lost time.
//!
//! Usage: `cargo run -p bench --bin ablation_imbalance --release
//!         [--tuples N] [--procs P] [--slow FACTOR]`

use mpsim::presets;
use pautoclass::{run_fixed_j, ParallelConfig, Partitioning};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get_f = |flag: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("numeric flag value"))
            .unwrap_or(default)
    };
    let tuples = get_f("--tuples", 40_000.0) as usize;
    let p = get_f("--procs", 8.0) as usize;
    let slow = get_f("--slow", 0.5);
    assert!(p >= 2, "need at least 2 processors");
    let j = 16;
    let cycles = 3;
    eprintln!("ablation_imbalance: {tuples} tuples, P={p}, rank 0 at {slow}x speed");

    // Rank 0 runs at `slow` times the speed of the others.
    let mut speeds = vec![1.0; p];
    speeds[0] = slow;

    let configs: [(&str, mpsim::MachineSpec, Partitioning); 3] = [
        ("homogeneous + block", presets::meiko_cs2(p), Partitioning::Block),
        (
            "slow rank 0 + block",
            presets::meiko_cs2(p).with_rank_speeds(speeds.clone()),
            Partitioning::Block,
        ),
        (
            "slow rank 0 + weighted",
            presets::meiko_cs2(p).with_rank_speeds(speeds.clone()),
            Partitioning::Weighted(speeds.clone()),
        ),
    ];

    let data = datagen::paper_dataset(tuples, 0xDA7A);
    println!("A-imbalance — seconds per base_cycle (virtual), {tuples} tuples, P={p}, J={j}");
    println!("{:>26} {:>12} {:>16}", "configuration", "s/cycle", "vs homogeneous");
    let mut base = None;
    for (name, machine, partition) in configs {
        let config = ParallelConfig { partition, ..ParallelConfig::default() };
        let t = run_fixed_j(&data, &machine, j, cycles, 7, &config)
            .expect("simulated run failed")
            .per_cycle;
        let b = *base.get_or_insert(t);
        println!("{name:>26} {t:>12.4} {:>15.1}%", 100.0 * t / b);
    }
    println!(
        "\nexpected shape: a slow node under equal blocks drags every cycle to its\n\
         pace (the barrier effect of Allreduce); speed-proportional partitioning\n\
         recovers most of the loss."
    );
}
