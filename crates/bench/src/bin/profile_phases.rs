//! T-profile (paper §3.1): where does sequential AutoClass spend its time?
//! The paper measured `base_cycle` at ~99.5 % of total runtime, with
//! `update_wts` and `update_parameters` dominating and
//! `update_approximations` negligible. This harness reproduces that
//! measurement with wall-clock timers around the same three functions.
//!
//! Usage: `cargo run -p bench --bin profile_phases --release [--tuples N]`

use autoclass::search::{search, SearchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tuples = args
        .iter()
        .position(|a| a == "--tuples")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("numeric --tuples"))
        .unwrap_or(14_000); // the paper's profiling dataset had 14K tuples
    eprintln!("profile_phases: sequential AutoClass on {tuples} tuples");

    let data = datagen::paper_dataset(tuples, 0xDA7A);
    let config = SearchConfig {
        start_j_list: vec![2, 4, 8, 16],
        tries_per_j: 1,
        max_cycles: 30,
        ..SearchConfig::default()
    };
    let result = search(&data.full_view(), &config);
    let p = result.profile;
    let total = p.total();
    println!("T-profile — sequential AutoClass phase breakdown ({tuples} tuples)");
    println!("{:>22} {:>10} {:>8}", "phase", "seconds", "share");
    let row = |name: &str, secs: f64| {
        println!("{name:>22} {secs:>10.3} {:>7.2}%", 100.0 * secs / total);
    };
    row("initialization", p.init);
    row("update_wts", p.wts);
    row("update_parameters", p.params);
    row("update_approximations", p.approx);
    row("other", p.other);
    println!("{:>22} {total:>10.3} {:>7.2}%", "total", 100.0);
    println!(
        "\nbase_cycle share: {:.2}% over {} cycles (paper: ~99.5%)",
        100.0 * p.base_cycle_fraction(),
        p.cycles
    );
    println!(
        "best classification: {} classes, CS score {:.1}",
        result.best.n_classes(),
        result.best.score()
    );
}
