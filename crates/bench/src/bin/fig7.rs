//! Figure 7: speedup (T1 / TP) of P-AutoClass on different numbers of
//! processors, per dataset size, with the linear reference.
//!
//! Usage: `cargo run -p bench --bin fig7 --release [--full]
//!         [--sizes ...] [--procs ...]`

use bench::{grid_from_args, print_table, run_grid};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = grid_from_args(&args);
    assert_eq!(cfg.procs.first(), Some(&1), "speedup needs P=1 as the baseline");
    eprintln!("fig7: speedup on simulated Meiko CS-2; sizes={:?} procs={:?}", cfg.sizes, cfg.procs);
    let elapsed = run_grid(&cfg);
    let mut cells: Vec<Vec<String>> = elapsed
        .iter()
        .map(|row| {
            let t1 = row[0];
            row.iter().map(|&t| format!("{:.2}", t1 / t)).collect()
        })
        .collect();
    // The paper's plot includes the linear reference.
    cells.push(cfg.procs.iter().map(|&p| format!("{p:.2}")).collect());
    let mut sizes = cfg.sizes.clone();
    sizes.push(0); // placeholder row label for "linear"
    print_table(
        "Fig 7 — speedup T1/TP of P-AutoClass (last row: linear)",
        &sizes,
        &cfg.procs,
        &cells,
    );

    // Optimal processor count per size (where speedup peaks) — the
    // paper's in-text observation (e.g. 4 procs for 5 000 tuples).
    println!("\noptimal processor count per dataset size:");
    for (row, &n) in elapsed.iter().zip(&cfg.sizes) {
        let (best_i, _) =
            row.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty row");
        println!("  {n:>7} tuples -> {} procs", cfg.procs[best_i]);
    }
}
