//! A-seq (paper §3, in text): sequential AutoClass runtime grows linearly
//! with dataset size — the observation motivating the parallelization
//! (3 h for 14K tuples on a Pentium ⇒ more than a day for 140K).
//!
//! We verify linearity on the simulated machine's virtual clock (P = 1)
//! and report virtual and host times side by side.
//!
//! Usage: `cargo run -p bench --bin seq_scaling --release [--sizes a,b,c]`

use std::time::Instant;

use mpsim::presets;
use pautoclass::{run_fixed_j, ParallelConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes: Vec<usize> = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').map(|s| s.parse().expect("size")).collect())
        .unwrap_or_else(|| vec![5_000, 10_000, 20_000, 40_000, 80_000]);
    let j = 16;
    let cycles = 3;
    eprintln!("seq_scaling: P=1, J={j}, {cycles} timed cycles");

    println!("A-seq — sequential (P=1) time per base_cycle vs dataset size");
    println!(
        "{:>10} {:>16} {:>16} {:>12}",
        "tuples", "virtual s/cycle", "host s/cycle", "virt/tuple"
    );
    let machine = presets::meiko_cs2(1);
    let config = ParallelConfig::default();
    let mut first_ratio: Option<f64> = None;
    for &n in &sizes {
        let data = datagen::paper_dataset(n, 0xDA7A);
        let host0 = Instant::now();
        let t = run_fixed_j(&data, &machine, j, cycles, 7, &config).expect("run failed");
        let host = host0.elapsed().as_secs_f64() / cycles as f64;
        let per_tuple = t.per_cycle / n as f64;
        first_ratio.get_or_insert(per_tuple);
        println!("{n:>10} {:>16.4} {host:>16.4} {per_tuple:>12.3e}", t.per_cycle);
    }
    if let Some(r0) = first_ratio {
        println!(
            "\nlinearity check: virtual seconds per tuple should be constant (≈{r0:.3e});\n\
             the paper's claim \"execution time increases linearly with the size of\n\
             dataset\" holds when the last column is flat."
        );
    }
}
