//! Figure 8: scaleup — time per `base_cycle` iteration with 10 000 tuples
//! per processor (10 000 on 1 processor up to 100 000 on 10), grouping
//! into 8 and 16 clusters.
//!
//! Usage: `cargo run -p bench --bin fig8 --release [--per-proc N]
//!         [--cycles C] [--procs 1,2,...]`

use mpsim::presets;
use pautoclass::{run_fixed_j, ParallelConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("numeric flag value"))
            .unwrap_or(default)
    };
    let per_proc = get("--per-proc", 10_000);
    let cycles = get("--cycles", 3);
    let procs: Vec<usize> = args
        .iter()
        .position(|a| a == "--procs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').map(|s| s.parse().expect("proc count")).collect())
        .unwrap_or_else(|| (1..=10).collect());

    eprintln!("fig8: scaleup with {per_proc} tuples/processor, {cycles} timed cycles");
    println!("Fig 8 — seconds per base_cycle iteration (virtual), {per_proc} tuples/processor");
    println!("{:>6} {:>12} {:>12} {:>12}", "procs", "tuples", "8 clusters", "16 clusters");
    let config = ParallelConfig::default();
    for &p in &procs {
        let n = per_proc * p;
        let data = datagen::paper_dataset(n, 0xDA7A);
        let machine = presets::meiko_cs2(p);
        let t8 = run_fixed_j(&data, &machine, 8, cycles, 7, &config)
            .expect("simulated run failed")
            .per_cycle;
        let t16 = run_fixed_j(&data, &machine, 16, cycles, 7, &config)
            .expect("simulated run failed")
            .per_cycle;
        println!("{p:>6} {n:>12} {t8:>12.4} {t16:>12.4}");
    }
}
