//! A-wtsonly (paper §5): P-AutoClass parallelizes *both* `update_wts` and
//! `update_parameters`; the earlier Miller & Guo MIMD prototype
//! parallelized only `update_wts`, gathering the weights to a master for
//! the parameter computation. This ablation quantifies the difference on
//! the simulated CS-2, plus the PerTerm-vs-Fused exchange ablation.
//!
//! Usage: `cargo run -p bench --bin ablation_strategy --release
//!         [--tuples N] [--procs 1,2,...]`

use mpsim::presets;
use pautoclass::{run_fixed_j, Exchange, ParallelConfig, Strategy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tuples = args
        .iter()
        .position(|a| a == "--tuples")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("numeric --tuples"))
        .unwrap_or(20_000);
    let procs: Vec<usize> = args
        .iter()
        .position(|a| a == "--procs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').map(|s| s.parse().expect("proc count")).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 6, 8, 10]);
    let j = 16;
    let cycles = 3;
    eprintln!("ablation_strategy: {tuples} tuples, J={j}, {cycles} timed cycles");

    let data = datagen::paper_dataset(tuples, 0xDA7A);
    let strategies: [(&str, Strategy); 3] = [
        ("full/per-term", Strategy::Full { exchange: Exchange::PerTerm }),
        ("full/fused", Strategy::Full { exchange: Exchange::Fused }),
        ("wts-only", Strategy::WtsOnly),
    ];

    println!("A-wtsonly — seconds per base_cycle (virtual), {tuples} tuples, J={j}");
    print!("{:>6}", "procs");
    for (name, _) in &strategies {
        print!("{name:>15}");
    }
    println!();
    for &p in &procs {
        let machine = presets::meiko_cs2(p);
        print!("{p:>6}");
        for (_, strategy) in &strategies {
            let config = ParallelConfig { strategy: *strategy, ..ParallelConfig::default() };
            let t = run_fixed_j(&data, &machine, j, cycles, 7, &config)
                .expect("simulated run failed")
                .per_cycle;
            print!("{t:>15.4}");
        }
        println!();
    }
    println!(
        "\nexpected shape: full strategies scale with P; wts-only stalls because the\n\
         weight-matrix gather and the master-side update_parameters do not shrink with P."
    );
}
