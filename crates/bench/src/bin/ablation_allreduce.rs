//! A-collectives: how the Allreduce algorithm changes collective cost on
//! the simulated CS-2 across message sizes — the design ablation behind
//! `MachineSpec::allreduce` (the era-faithful Linear default vs recursive
//! doubling vs ring).
//!
//! Usage: `cargo run -p bench --bin ablation_allreduce --release [--procs P]`

use mpsim::{presets, run_spmd_default, AllreduceAlgo, ReduceOp};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let p = args
        .iter()
        .position(|a| a == "--procs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("numeric --procs"))
        .unwrap_or(10);
    eprintln!("ablation_allreduce: P={p} on the simulated CS-2");

    let algos = [
        ("linear", AllreduceAlgo::Linear),
        ("rec-doubling", AllreduceAlgo::RecursiveDoubling),
        ("ring", AllreduceAlgo::Ring),
        ("rabenseifner", AllreduceAlgo::Rabenseifner),
        ("auto", AllreduceAlgo::Auto),
    ];
    let sizes: [usize; 6] = [8, 64, 512, 4_096, 32_768, 262_144];

    println!("A-collectives — virtual seconds per Allreduce, P={p}");
    print!("{:>10}", "doubles");
    for (name, _) in &algos {
        print!("{name:>14}");
    }
    println!();
    let spec = presets::meiko_cs2(p);
    for &n in &sizes {
        print!("{n:>10}");
        for (_, algo) in &algos {
            let out = run_spmd_default(&spec, |c| {
                let mut buf = vec![c.rank() as f64; n];
                c.allreduce_f64s_with(&mut buf, ReduceOp::Sum, *algo);
            })
            .expect("simulated run failed");
            print!("{:>14.6}", out.elapsed);
        }
        println!();
    }
    println!(
        "\nexpected shape: linear loses at scale for small messages (O(P) latencies);\n\
         recursive doubling wins small messages (O(log P)); ring wins large messages\n\
         (bandwidth-optimal reduce-scatter + allgather); rabenseifner matches ring's\n\
         bandwidth with log-latency on power-of-two P; auto tracks the per-size winner."
    );
}
