//! Known-bad: nondeterminism sources in simulator-core code.
//! Never compiled — parsed by the spmdlint corpus tests only.

use std::collections::HashMap;
use std::collections::HashSet;

pub struct Registry {
    slots: HashMap<u64, f64>,
    seen: HashSet<u64>,
}

pub fn unseeded() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
