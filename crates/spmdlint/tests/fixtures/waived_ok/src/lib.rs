//! Waiver mechanics: both waiver forms still *report* their findings,
//! tagged `waived` — they never fail `--check`.
//! Never compiled — parsed by the spmdlint corpus tests only.

pub fn waived_loop(comm: &mut Comm, buf: &mut [f64]) {
    for _ in 0..10 {
        // lint:allow(blocking-collective): amortized by the fixture's tiny payload
        comm.allreduce_f64s(buf);
    }
}

pub fn waived_phase(comm: &mut Comm) {
    comm.enter_phase("estep");
    comm.barrier();
}
