//! Known-good sim-core text the stream rules must NOT flag: rule
//! triggers in comments, strings, doc-tests, and `#[cfg(test)]` code.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// Doc text mentioning Instant::now() and .unwrap() must not fire.
///
/// ```
/// let t = Instant::now();
/// x.unwrap();
/// ```
pub fn documented() -> &'static str {
    // A comment with HashMap, thread_rng, and delta == 0.0 in it.
    "strings with Instant::now() and HashMap inside do not count"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: Option<u64> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
