//! A supervisor that binds and acts on every recovery result: the
//! `discarded-recovery` rule must stay silent here.

pub struct Comm;

impl Comm {
    pub fn recv_f64s(&mut self, _from: usize) -> Result<Vec<f64>, String> {
        Ok(Vec::new())
    }
    pub fn wait(&mut self, _req: usize) -> Result<(), String> {
        Ok(())
    }
    pub fn promote_spare(&mut self, _slot: usize) -> Result<usize, String> {
        Ok(0)
    }
}

pub fn supervise(comm: &mut Comm) -> Result<usize, String> {
    let payload = comm.recv_f64s(1)?;
    if payload.is_empty() {
        comm.wait(3)?;
    }
    let slot = comm.promote_spare(2)?;
    // Discarding a plain value (not a recovery call) is fine.
    let _ = slot + 1;
    Ok(slot)
}
