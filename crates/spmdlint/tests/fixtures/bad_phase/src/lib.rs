//! Known-bad: enter_phase/exit_phase imbalance.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// Still open at function end.
pub fn left_open(comm: &mut Comm) {
    comm.enter_phase("estep");
    comm.barrier();
}

/// Branch arms leave different phase depths.
pub fn arm_imbalance(comm: &mut Comm, flag: bool) {
    comm.enter_phase("estep");
    if flag {
        comm.exit_phase();
    }
    comm.barrier();
}

/// Exit with no phase open on this path.
pub fn exit_unopened(comm: &mut Comm) {
    comm.exit_phase();
}

/// A loop iteration that does not balance.
pub fn loop_imbalance(comm: &mut Comm) {
    for _ in 0..3 {
        comm.enter_phase("mstep");
    }
}
