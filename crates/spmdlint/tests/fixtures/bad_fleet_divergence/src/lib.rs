//! Known-bad: the sub-communicator exemption must not leak to the
//! parent. The split itself is a collective on the communicator it is
//! called on, and world collectives after a rank-dependent secede are
//! still divergent.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// Gating the split on rank diverges the parent's sequence: ranks that
/// skip the branch never enter the split.
pub fn gated_split(comm: &mut Comm, buf: &mut [f64]) {
    if comm.rank() == 0 {
        let mut sub = comm.split(0);
        sub.allreduce_f64s(buf);
    }
}

/// A world collective after a rank-dependent early return is divergent
/// even when the group collectives between them are exempt.
pub fn world_after_secede(comm: &mut Comm, culprit: usize) {
    let secede = comm.rank() == culprit;
    let mut sub = comm.split(u32::from(secede));
    if secede {
        return;
    }
    sub.barrier();
    comm.barrier();
}
