//! Known-bad: rank-variant payload shapes at collective call sites.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// A rank-variant `vec!` length.
pub fn variant_vec(comm: &mut Comm) {
    let mine = vec![0.0; comm.rank() + 1];
    comm.allgather_f64s(&mine);
}

/// A slice whose width is rank-variant (one tainted bound).
pub fn variant_slice(comm: &mut Comm, data: &mut [f64]) {
    let r = comm.rank();
    comm.allreduce_f64s(&mut data[..r]);
}

/// `rank()` in a root/count argument slot.
pub fn variant_root(comm: &mut Comm, buf: &mut [f64]) {
    comm.broadcast_f64s(comm.rank(), buf);
}
