//! Known-bad: every form of collective divergence the analyzer catches.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// Direct: a collective under a rank-gated branch.
pub fn gated_barrier(comm: &mut Comm) {
    if comm.rank() == 0 {
        comm.barrier();
    }
}

/// Post-dominator: a rank-dependent early return leaves the rest of the
/// function running on a rank-dependent subset.
pub fn early_exit(comm: &mut Comm) {
    if comm.rank() == 3 {
        return;
    }
    comm.barrier();
}

/// Via-call: the gated branch reaches a collective through a helper.
fn helper(comm: &mut Comm) {
    let mut x = [0.0];
    comm.allreduce_f64s(&mut x);
}

pub fn gated_call(comm: &mut Comm) {
    if comm.rank() % 2 == 0 {
        helper(comm);
    }
}

/// Divergent parameter: `flag` steers control flow around a collective,
/// so passing a rank-variant argument there is itself a divergence.
fn maybe_sync(comm: &mut Comm, flag: bool) {
    if flag {
        comm.barrier();
    }
}

pub fn tainted_argument(comm: &mut Comm) {
    let leader = comm.rank() == 0;
    maybe_sync(comm, leader);
}
