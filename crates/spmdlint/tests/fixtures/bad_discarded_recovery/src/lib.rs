//! A supervisor that drops recovery results on the floor: every
//! `let _ =` of a receive, wait, or promotion must fire
//! `discarded-recovery`.

pub struct Comm;

impl Comm {
    pub fn recv_f64s(&mut self, _from: usize) -> Result<Vec<f64>, String> {
        Ok(Vec::new())
    }
    pub fn wait(&mut self, _req: usize) -> Result<(), String> {
        Ok(())
    }
    pub fn promote_spare(&mut self, _slot: usize) -> Result<usize, String> {
        Ok(0)
    }
}

pub fn supervise(comm: &mut Comm) {
    let _ = comm.recv_f64s(1);
    let _ = comm.wait(3);
    let _ = comm.promote_spare(2);
    // Discarding something unrelated stays silent.
    let _ = 1 + 1;
}
