//! Known-good trait-generic rank-body idioms: the SPMD rules apply
//! unchanged when the communicator is a generic `C: Communicator`
//! bound or a `dyn Communicator` object instead of the concrete
//! `Comm`. Never compiled — parsed by the corpus tests only.

/// Generic backend: a sanitized decision guards a balanced collective.
pub fn replicated_decision<C: Communicator>(comm: &mut C, buf: &mut [f64]) {
    let err = comm.allreduce_scalar(local_err(buf));
    if err < 1.0 {
        comm.barrier();
    }
}

/// A trait request handle (`C::Req`) waited on every path.
pub fn overlapped<C: Communicator>(comm: &mut C, buf: &mut [f64]) -> f64 {
    let req = comm.iallreduce_f64s(buf);
    let local = prepare(buf);
    comm.wait(req);
    local
}

/// Dynamic dispatch changes nothing: collectives stay balanced.
pub fn dynamic(comm: &mut dyn Communicator, buf: &mut [f64]) {
    let width = buf.len() / comm.size();
    let mut acc = vec![0.0; width];
    comm.allreduce_f64s(&mut acc);
}

/// A helper returning the trait handle hands the wait to its caller.
fn post<C: Communicator>(comm: &mut C, buf: &mut [f64]) -> C::Req {
    comm.iallreduce_f64s(buf)
}

/// The caller waits the helper's handle on every path.
pub fn post_then_wait<C: Communicator>(comm: &mut C, buf: &mut [f64]) {
    let req = post(comm, buf);
    comm.wait(req);
}
