//! Known-good rank-body idioms the analyzer must NOT flag: sanitized
//! convergence decisions, pipelined waitall, block decomposition.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// Branching on an allreduced value is replicated by construction.
pub fn replicated_decision(comm: &mut Comm, buf: &mut [f64]) {
    let err = comm.allreduce_scalar(local_err(buf));
    if err < 1.0 {
        comm.barrier();
    }
}

/// Handles pushed into a pre-loop collection, waited after the loop.
pub fn pipelined(comm: &mut Comm, buf: &mut [f64]) {
    let mut reqs = Vec::new();
    for _ in 0..4 {
        reqs.push(comm.iallreduce_f64s(buf));
    }
    comm.waitall(&mut reqs);
}

/// Block decomposition: rank-variant *bounds*, rank-invariant width.
pub fn block_decomposed(comm: &mut Comm, data: &[f64]) {
    let r = comm.rank();
    let n = data.len() / comm.size();
    let mine = &data[r * n..(r + 1) * n];
    let mut acc = vec![0.0; n];
    accumulate(mine, &mut acc);
    comm.allreduce_f64s(&mut acc);
}

/// Owner-computes: a rank-derived view passed to an ordinary call does
/// not taint the result (content varies by design; structure does not).
pub fn owner_computes(comm: &mut Comm, data: &[f64]) {
    let part = partition(data.len(), comm.size(), comm.rank());
    let stats = estep(data, &part);
    let model = mstep(&stats);
    if model_ready(&model) {
        comm.barrier();
    }
}
