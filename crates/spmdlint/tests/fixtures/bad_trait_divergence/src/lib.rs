//! Known-bad trait-generic bodies: rank-gated trait collectives and
//! dropped trait request handles — the same bugs as on the concrete
//! communicator. Never compiled — parsed by the corpus tests only.

/// Rank-gating a generic collective diverges exactly as before.
pub fn gated<C: Communicator>(comm: &mut C, buf: &mut [f64]) {
    if comm.rank() == 0 {
        comm.barrier();
    }
}

/// A `dyn` call site is still a collective: divergent early exit.
pub fn dyn_gated(comm: &mut dyn Communicator, buf: &mut [f64]) {
    if comm.rank() > 2 {
        return;
    }
    comm.allreduce_f64s(buf);
}

/// The trait request handle is dropped unbound.
pub fn dropped<C: Communicator>(comm: &mut C, buf: &mut [f64]) {
    comm.iallreduce_f64s(buf);
    comm.barrier();
}

/// A helper returning `C::Req` makes its caller responsible.
fn post<C: Communicator>(comm: &mut C, buf: &mut [f64]) -> C::Req {
    comm.iallreduce_f64s(buf)
}

/// The helper's handle dies at the end of the function, unwaited.
pub fn leaky<C: Communicator>(comm: &mut C, buf: &mut [f64]) {
    let req = post(comm, buf);
    comm.barrier();
}
