//! Known-bad: a blocking collective paid once per loop iteration.
//! Never compiled — parsed by the spmdlint corpus tests only.

pub fn per_iteration(comm: &mut Comm, buf: &mut [f64]) {
    for _ in 0..10 {
        comm.allreduce_f64s(buf);
    }
}
