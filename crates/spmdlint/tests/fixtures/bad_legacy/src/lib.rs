//! Known-bad: the migrated legacy hygiene rules.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// wall-clock: real time in simulated code.
pub fn timestamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

/// unwrap in library code.
pub fn take(x: Option<u64>) -> u64 {
    x.unwrap()
}

/// float-eq: exact comparison against a float literal.
pub fn converged(delta: f64) -> bool {
    delta == 0.0
}

/// recv-unwrap: unwrapping a receive result.
pub fn drain(comm: &mut Comm, buf: &mut [f64]) {
    comm.recv_f64s(0, buf).unwrap();
}
