//! Known-good sub-communicator idioms: collectives on a split's child
//! synchronize only the color group, whose membership is exactly the
//! ranks the split sent down the calling path — so the secede/shrink
//! pattern and fleet sub-searches must stay silent.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// A helper whose collectives all run on a `sub`-named parameter gets a
/// group-collective summary, not a world one.
fn group_reduce(sub: &mut SubComm, buf: &mut [f64]) {
    sub.allreduce_f64s(buf);
    sub.barrier();
}

/// The secede pattern: every rank splits, the culprit leaves, and the
/// survivors continue with collectives on the child group alone — both
/// directly and through a group-collective helper.
pub fn shrink_and_continue(comm: &mut Comm, culprit: usize, buf: &mut [f64]) {
    let secede = comm.rank() == culprit;
    let mut sub = comm.split(u32::from(secede));
    if secede {
        return;
    }
    sub.barrier();
    group_reduce(&mut sub, buf);
}

/// Fleet sub-searches: membership is rank-derived and the fleets take
/// different paths, but each path's collectives run on that fleet's own
/// nested child group (a child of a child is still a group
/// communicator), partitioned by the very condition that gates them.
pub fn fleet_burst(comm: &mut Comm, buf: &mut [f64]) {
    let mut sub = comm.split(0);
    let color = sub.rank() as u32 % 2;
    let mut fleet = sub.split(color);
    if color == 0 {
        fleet.allreduce_f64s(buf);
        group_reduce(&mut fleet, buf);
    }
    sub.barrier();
}
