//! Known-bad: requests posted but not (always) waited.
//! Never compiled — parsed by the spmdlint corpus tests only.

/// Dropped: the returned handle is never even bound.
pub fn dropped(comm: &mut Comm, buf: &mut [f64]) {
    comm.iallreduce_f64s(buf);
    comm.barrier();
}

/// An early return leaves the handle pending on one path.
pub fn early_return(comm: &mut Comm, buf: &mut [f64], skip: bool) -> usize {
    let req = comm.iallreduce_f64s(buf);
    if skip {
        return 0;
    }
    comm.wait(req);
    1
}

/// A `?` exit leaves the handle pending on the error path.
pub fn question_exit(comm: &mut Comm, buf: &mut [f64]) -> Result<(), SimError> {
    let req = comm.irecv_f64s(0, buf);
    comm.probe()?;
    comm.wait(req);
    Ok(())
}

/// A handle bound inside the loop body dies with the iteration.
pub fn loop_local(comm: &mut Comm, buf: &mut [f64]) {
    for _ in 0..4 {
        let req = comm.iallreduce_f64s(buf);
    }
}
