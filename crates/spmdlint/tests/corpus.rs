//! The fixture corpus gate plus determinism and workspace-cleanliness
//! tests. Each `tests/fixtures/<name>/` directory is a known-bad (or
//! known-good) mini-crate with a `spmdlint.role` marker and an `EXPECT`
//! file of `rule:line` entries; the corpus asserts every expected rule
//! fires at its expected line, and that the known-good idioms stay
//! silent.

use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn fixture(name: &str) -> spmdlint::Report {
    spmdlint::analyze(&fixtures_dir().join(name)).unwrap()
}

#[test]
fn every_fixture_expectation_fires() {
    let results = spmdlint::check_fixtures(&fixtures_dir()).unwrap();
    assert_eq!(results.len(), 16, "fixture corpus changed size: {:?}", results.keys());
    for (name, missing) in &results {
        assert!(missing.is_empty(), "fixture {name}: {missing:?}");
    }
}

#[test]
fn divergence_fixture_exact_findings() {
    let report = fixture("bad_divergence");
    let got: Vec<(usize, &str, &str)> =
        report.findings.iter().map(|f| (f.line, f.rule, f.culprit.as_str())).collect();
    assert_eq!(
        got,
        vec![
            (7, "collective-divergence", "barrier"),
            (17, "collective-divergence", "barrier"),
            (28, "collective-divergence", "helper"),
            (42, "collective-divergence", "maybe_sync(#1)"),
        ]
    );
    // The taint traces name the source.
    assert!(report.findings[0].taint_trace[0].contains("rank()"));
    assert!(report.findings[1].taint_trace[0].contains("early exit"));
}

#[test]
fn subcomm_exemption_does_not_leak_to_the_parent() {
    let report = fixture("bad_fleet_divergence");
    let got: Vec<(usize, &str, &str)> =
        report.findings.iter().map(|f| (f.line, f.rule, f.culprit.as_str())).collect();
    // The gated split on the parent and the post-secede world barrier
    // fire; the sub-communicator collectives between them stay silent.
    assert_eq!(
        got,
        vec![(11, "collective-divergence", "split"), (25, "collective-divergence", "barrier")]
    );
}

#[test]
fn unwaited_fixture_covers_every_exit_kind() {
    let report = fixture("bad_unwaited");
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("discarded without being bound")));
    assert!(msgs.iter().any(|m| m.contains("before return")));
    assert!(msgs.iter().any(|m| m.contains("before `?` exit")));
    assert!(msgs.iter().any(|m| m.contains("end of the loop body")));
}

#[test]
fn payload_fixture_names_the_culprits() {
    let report = fixture("bad_payload");
    let culprits: Vec<&str> = report.findings.iter().map(|f| f.culprit.as_str()).collect();
    assert_eq!(culprits, vec!["mine", "r", "broadcast_f64s(rank())"]);
}

#[test]
fn legacy_rules_fire_with_historic_ids() {
    let report = fixture("bad_legacy");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["wall-clock", "unwrap", "float-eq", "recv-unwrap", "unwrap"]);
}

#[test]
fn discarded_recovery_names_the_dropped_call() {
    let report = fixture("bad_discarded_recovery");
    let got: Vec<(usize, &str)> = report.findings.iter().map(|f| (f.line, f.rule)).collect();
    assert_eq!(
        got,
        vec![(20, "discarded-recovery"), (21, "discarded-recovery"), (22, "discarded-recovery")]
    );
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs[0].contains("recv_f64s"));
    assert!(msgs[1].contains("wait"));
    assert!(msgs[2].contains("promote_spare"));
}

#[test]
fn clean_fixtures_stay_silent() {
    for name in [
        "clean_spmd",
        "clean_hygiene",
        "clean_trait_spmd",
        "clean_fleet_subsearch",
        "clean_standby_supervisor",
    ] {
        let report = fixture(name);
        assert!(
            report.findings.is_empty(),
            "{name} should be clean, got: {:?}",
            report
                .findings
                .iter()
                .map(|f| format!("{}:{} {}", f.file, f.line, f.rule))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn both_waiver_forms_report_but_do_not_fail() {
    let report = fixture("waived_ok");
    assert_eq!(report.findings.len(), 2);
    assert!(report.findings.iter().all(|f| f.waived));
    assert_eq!(report.unwaivered_errors(), 0);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    // One inline `lint:allow`, one `spmdlint.waivers` entry.
    assert_eq!(rules, vec!["blocking-collective", "phase-balance"]);
}

#[test]
fn json_is_byte_identical_across_runs() {
    let dir = fixtures_dir().join("bad_divergence");
    let a = spmdlint::analyze(&dir).unwrap().to_json();
    let b = spmdlint::analyze(&dir).unwrap().to_json();
    assert_eq!(a, b);
    assert!(a.contains("\"version\": 1"));
    assert!(a.contains("\"unwaivered_errors\": 4"));
}

#[test]
fn workspace_json_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = spmdlint::analyze(&root).unwrap().to_json();
    let b = spmdlint::analyze(&root).unwrap().to_json();
    assert_eq!(a, b);
}

#[test]
fn workspace_has_no_unwaivered_errors() {
    let report = spmdlint::analyze(&workspace_root()).unwrap();
    let bad: Vec<String> = report
        .findings
        .iter()
        .filter(|f| !f.waived && f.severity == spmdlint::Severity::Error)
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(bad.is_empty(), "unwaivered errors in the workspace:\n{}", bad.join("\n"));
    assert!(report.files_scanned > 50, "workspace scan looks truncated");
    assert!(report.functions > 500, "function extraction looks truncated");
}

#[test]
fn findings_are_sorted_and_deduped() {
    let report = spmdlint::analyze(&workspace_root()).unwrap();
    let keys: Vec<(&str, usize, &str, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule, f.message.as_str()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(keys, sorted);
}
