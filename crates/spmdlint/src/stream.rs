//! Token-stream rules: the migrated legacy lint rules (wall-clock,
//! unwrap, float-eq, recv-unwrap) plus the new `nondet` rule.
//!
//! These run over the file's full token-tree stream (so module-level
//! items like `type Registry = Mutex<HashMap<…>>` are covered, not just
//! function bodies) with `#[cfg(test)]` / `#[test]` line spans excluded
//! — the old lint's test exemption, now computed from the AST instead of
//! brace counting. Because the lexer strips comments and string
//! literals, none of these rules can false-positive on documentation or
//! message text, which the regex pass could.

use syn::{Delim, Tt};

use crate::{
    FileRules, RawFinding, Severity, DISCARDED_RECOVERY, FLOAT_EQ, NONDET, RECV_UNWRAP, UNWRAP,
    WALL_CLOCK,
};

pub(crate) fn scan_stream(file: &syn::File, rules: &FileRules, out: &mut Vec<RawFinding>) {
    if !(rules.wall_clock
        || rules.unwrap
        || rules.recv_unwrap
        || rules.float_eq
        || rules.nondet
        || rules.discarded_recovery)
    {
        return;
    }
    // Each nesting level is scanned exactly once, with its own local
    // adjacency (scan_flat does not recurse; scan_groups descends).
    scan_flat(&file.tokens, file, rules, out);
    scan_groups(&file.tokens, file, rules, out);
}

fn scan_groups(ts: &[Tt], file: &syn::File, rules: &FileRules, out: &mut Vec<RawFinding>) {
    for t in ts {
        if let Tt::Group { tokens, .. } = t {
            scan_flat(tokens, file, rules, out);
            scan_groups(tokens, file, rules, out);
        }
    }
}

fn scan_flat(ts: &[Tt], file: &syn::File, rules: &FileRules, out: &mut Vec<RawFinding>) {
    for (i, t) in ts.iter().enumerate() {
        let line = t.line();
        if file.line_is_test(line) {
            continue;
        }
        // wall-clock: Instant::now / SystemTime::now / thread::sleep.
        if rules.wall_clock {
            if let Some(first) = t.ident() {
                let second = path_segment(ts, i);
                let hit = matches!(
                    (first, second),
                    ("Instant", Some("now"))
                        | ("SystemTime", Some("now"))
                        | ("thread", Some("sleep"))
                );
                if hit {
                    let pat = format!("{first}::{}", second.unwrap_or_default());
                    out.push(RawFinding::new(
                        line,
                        WALL_CLOCK,
                        Severity::Error,
                        format!("`{pat}` outside comm.rs: simulated code must use virtual time"),
                        pat,
                    ));
                }
            }
        }
        // unwrap / recv-unwrap: `.unwrap()` / `.expect(…)`.
        if (rules.unwrap || rules.recv_unwrap) && t.is_punct(".") {
            if let Some(name @ ("unwrap" | "expect")) = ts.get(i + 1).and_then(Tt::ident) {
                if matches!(ts.get(i + 2), Some(Tt::Group { delim: Delim::Paren, .. })) {
                    let pat = if name == "unwrap" {
                        ".unwrap()".to_string()
                    } else {
                        ".expect(".to_string()
                    };
                    if rules.unwrap {
                        out.push(RawFinding::new(
                            line,
                            UNWRAP,
                            Severity::Error,
                            format!(
                                "`{pat}` in library code: return an error or waive with \
                                 `// lint:allow(unwrap): why`"
                            ),
                            pat.clone(),
                        ));
                    }
                    if rules.recv_unwrap && line_mentions_receive(ts, line) {
                        out.push(RawFinding::new(
                            line,
                            RECV_UNWRAP,
                            Severity::Error,
                            "unwrapping a receive/wait result: injected faults make this a \
                             legitimate Err — propagate the SimError or waive with \
                             `// lint:allow(recv-unwrap): why`"
                                .to_string(),
                            pat,
                        ));
                    }
                }
            }
        }
        // float-eq: `==` / `!=` with a float literal neighbor.
        if rules.float_eq && (t.is_punct("==") || t.is_punct("!=")) {
            let op = if t.is_punct("==") { "==" } else { "!=" };
            let prev_float = i > 0 && is_float_lit(&ts[i - 1]);
            let next_float = match ts.get(i + 1) {
                Some(n) if is_float_lit(n) => true,
                // negative literal: `!= -1.0`
                Some(n) if n.is_punct("-") => ts.get(i + 2).is_some_and(is_float_lit),
                _ => false,
            };
            if prev_float || next_float {
                out.push(RawFinding::new(
                    line,
                    FLOAT_EQ,
                    Severity::Error,
                    format!(
                        "direct `{op}` against a float literal: compare with a tolerance \
                         or waive with `// lint:allow(float-eq): why`"
                    ),
                    op.to_string(),
                ));
            }
        }
        // discarded-recovery: `let _ = <expr>;` where the discarded
        // expression mentions a receive, wait, or promotion. Under
        // injected faults those results carry the failure diagnosis the
        // supervisor decides recovery from; dropping one silently skips
        // a recovery path.
        if rules.discarded_recovery
            && t.ident() == Some("let")
            && ts.get(i + 1).and_then(Tt::ident) == Some("_")
            && ts.get(i + 2).is_some_and(|n| n.is_punct("="))
        {
            if let Some(name) = discarded_recovery_ident(&ts[i + 3..]) {
                out.push(RawFinding::new(
                    line,
                    DISCARDED_RECOVERY,
                    Severity::Error,
                    format!(
                        "`let _ =` discards the result of `{name}`: a receive/wait/\
                         promotion outcome is a recovery diagnosis — bind and handle \
                         it, or waive with `// lint:allow(discarded-recovery): why`"
                    ),
                    format!("let _ = …{name}…"),
                ));
            }
        }
        // nondet: HashMap/HashSet (iteration order), thread_rng
        // (unseeded randomness). Instant/SystemTime are the wall-clock
        // rule's business — not double-reported here.
        if rules.nondet {
            if let Some(name @ ("HashMap" | "HashSet" | "thread_rng")) = t.ident() {
                let hint = match name {
                    "thread_rng" => "use a seeded Rng so runs are reproducible",
                    _ => "use BTreeMap/BTreeSet: hash iteration order varies run to run",
                };
                out.push(RawFinding::new(
                    line,
                    NONDET,
                    Severity::Error,
                    format!("`{name}` in simulator-core code: {hint}"),
                    name.to_string(),
                ));
            }
        }
    }
}

/// The path segment after `X::`, if the next tokens are `:: ident`.
fn path_segment<'a>(ts: &'a [Tt], i: usize) -> Option<&'a str> {
    if ts.get(i + 1).is_some_and(|t| t.is_punct("::")) {
        return ts.get(i + 2).and_then(Tt::ident);
    }
    None
}

/// The first identifier in the discarded expression (up to the statement
/// terminator, descending into groups) that names a receive, wait, or
/// promotion — `None` when the discard is of something the recovery
/// rule has no business with (e.g. `let _ = writeln!(…)`).
fn discarded_recovery_ident(ts: &[Tt]) -> Option<String> {
    fn mentions(ts: &[Tt]) -> Option<String> {
        for t in ts {
            match t {
                Tt::Ident { text, .. }
                    if text.contains("recv")
                        || text.contains("wait")
                        || text.contains("promot") =>
                {
                    return Some(text.clone());
                }
                Tt::Group { tokens, .. } => {
                    if let Some(n) = mentions(tokens) {
                        return Some(n);
                    }
                }
                _ => {}
            }
        }
        None
    }
    let end = ts.iter().position(|t| t.is_punct(";")).unwrap_or(ts.len());
    mentions(&ts[..end])
}

/// Does any identifier on this line mention a receive or wait? (The old
/// rule's same-line heuristic, on identifiers instead of raw text so
/// strings/comments cannot match.)
fn line_mentions_receive(ts: &[Tt], line: usize) -> bool {
    fn walk(ts: &[Tt], line: usize) -> bool {
        ts.iter().any(|t| match t {
            Tt::Ident { text, line: l } => {
                *l == line && (text.contains("recv") || text.contains("wait"))
            }
            Tt::Group { tokens, .. } => walk(tokens, line),
            _ => false,
        })
    }
    walk(ts, line)
}

fn is_float_lit(t: &Tt) -> bool {
    match t {
        Tt::Lit { text, .. } => {
            let starts_digit = text.chars().next().is_some_and(|c| c.is_ascii_digit());
            starts_digit
                && !text.starts_with("0x")
                && (text.contains('.') || text.ends_with("f64") || text.ends_with("f32"))
        }
        _ => false,
    }
}
