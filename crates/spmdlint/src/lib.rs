//! `spmdlint` — static analysis for the SPMD invariants the paper's
//! parallel EM search depends on.
//!
//! The PR 1 runtime verifier proves collective-sequence replication
//! *per run*; this crate proves the same invariants *per build* by
//! parsing the whole workspace (via the vendored `syn` stand-in),
//! building per-function summaries plus an interprocedural call graph,
//! and running a rank-taint walk over every function body.
//!
//! # Rules
//!
//! New SPMD rules (this crate's reason to exist):
//!
//! * **collective-divergence** — no collective call site (`allreduce*`,
//!   `barrier`, `broadcast*`, `gather*`, `split`, …) may be reachable
//!   under a branch whose condition is tainted by `rank()`, including
//!   via the *post-dominator* form (a rank-dependent early `return`
//!   leaves the rest of the function divergent) and via calls to
//!   functions whose summaries reach a collective.
//! * **unwaited-request** — every `isend`/`irecv`/`iallreduce` handle
//!   must be waited on all control-flow paths, including early-`return`
//!   and `?` exits; a request expression that is never bound is an
//!   immediate finding.
//! * **phase-balance** — `enter_phase`/`exit_phase` must balance along
//!   every path, across branches, and per loop iteration.
//! * **rank-variant-payload** — length/count expressions at collective
//!   call sites must not be rank-tainted (divergent payload *shapes*
//!   deadlock or corrupt the reduction even when the sequence matches).
//! * **nondet** — simulator-core code must not use `HashMap`/`HashSet`
//!   (iteration order), or `thread_rng` (unseeded randomness). Wall-clock
//!   reads (`Instant`/`SystemTime`) are the migrated wall-clock rule's
//!   business, so they are not double-reported here.
//! * **discarded-recovery** — supervisor code (the fault-tolerant
//!   drivers) must not drop a receive/wait/promotion result with
//!   `let _ = …`: under injected faults those results are the failure
//!   diagnoses recovery decisions are made from, so discarding one
//!   silently skips a recovery path.
//!
//! Migrated `xtask lint` rules, same IDs and waiver comments as the old
//! regex pass, now on the token stream (comments, strings, and doc-tests
//! can no longer false-positive): **wall-clock**, **unwrap**,
//! **float-eq**, **blocking-collective**, **recv-unwrap**.
//!
//! # Waivers
//!
//! Two forms, both preserved in the JSON output with `"waived": true`:
//!
//! * inline: `// lint:allow(<rule>): why` on the finding line or the
//!   line above (the old `xtask lint` format, unchanged);
//! * the checked-in `spmdlint.waivers` file at the repo root:
//!   `<rule> <path-prefix> — <justification>` per line.
//!
//! # Output
//!
//! [`Report::to_json`] emits findings sorted by (file, line, rule,
//! message) with a hand-rolled encoder and `BTreeMap`-only internals, so
//! two runs over the same tree are byte-identical.

mod stream;
mod summary;
mod walk;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub use summary::{FnInfo, Summaries};

/// Rule identifiers (stable; they appear in waivers and CI output).
pub const COLLECTIVE_DIVERGENCE: &str = "collective-divergence";
pub const UNWAITED_REQUEST: &str = "unwaited-request";
pub const PHASE_BALANCE: &str = "phase-balance";
pub const RANK_VARIANT_PAYLOAD: &str = "rank-variant-payload";
pub const NONDET: &str = "nondet";
pub const DISCARDED_RECOVERY: &str = "discarded-recovery";
pub const WALL_CLOCK: &str = "wall-clock";
pub const UNWRAP: &str = "unwrap";
pub const FLOAT_EQ: &str = "float-eq";
pub const BLOCKING_COLLECTIVE: &str = "blocking-collective";
pub const RECV_UNWRAP: &str = "recv-unwrap";

/// The mpsim collective operations: call sites that must be reached by
/// every rank of the communicator, in the same order.
pub const COLLECTIVES: &[&str] = &[
    "allgather_f64s",
    "allreduce_f64s",
    "allreduce_f64s_with",
    "allreduce_scalar",
    "alltoall_f64s",
    "barrier",
    "broadcast_f64s",
    "broadcast_u64",
    "gather_f64s",
    "iallreduce_f64s",
    "iallreduce_f64s_with",
    "reduce_f64s",
    "scan_f64s",
    "scatter_f64s",
    "split",
    "verify_replicated",
];

/// Functions returning a `Request` handle that must be waited.
pub const REQUEST_FNS: &[&str] =
    &["iallreduce_f64s", "iallreduce_f64s_with", "irecv_f64s", "isend_f64s"];

/// Collectives whose *result* (and in-place buffer) is replicated on
/// every rank: binding their value launders rank taint away. This is the
/// static mirror of the runtime replication invariant.
pub const SANITIZERS: &[&str] = &[
    "allgather_f64s",
    "allreduce_f64s",
    "allreduce_f64s_with",
    "allreduce_scalar",
    "broadcast_f64s",
    "broadcast_u64",
    "scan_f64s",
];

/// The blocking collectives the legacy loop rule watches (kept exactly
/// as the old regex pass had it).
pub const BLOCKING_SET: &[&str] = &["allreduce_f64s", "broadcast_f64s", "gather_f64s"];

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
    /// The offending expression or identifier, compactly rendered.
    pub culprit: String,
    /// How rank taint reached the finding, one hop per entry.
    pub taint_trace: Vec<String>,
    pub waived: bool,
}

/// Analysis results for one root.
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub functions: usize,
}

impl Report {
    pub fn unwaivered_errors(&self) -> usize {
        self.findings.iter().filter(|f| !f.waived && f.severity == Severity::Error).count()
    }

    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warning).count()
    }

    /// Deterministic JSON: findings pre-sorted, keys in fixed order.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\n      \"file\": \"{}\",", json_escape(&f.file)));
            s.push_str(&format!("\n      \"line\": {},", f.line));
            s.push_str(&format!("\n      \"rule\": \"{}\",", json_escape(f.rule)));
            s.push_str(&format!("\n      \"severity\": \"{}\",", f.severity));
            s.push_str(&format!("\n      \"message\": \"{}\",", json_escape(&f.message)));
            s.push_str(&format!("\n      \"culprit\": \"{}\",", json_escape(&f.culprit)));
            s.push_str("\n      \"taint_trace\": [");
            for (j, t) in f.taint_trace.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\"", json_escape(t)));
            }
            s.push_str("],");
            s.push_str(&format!("\n      \"waived\": {}", f.waived));
            s.push_str("\n    }");
        }
        s.push_str("\n  ],\n  \"summary\": {");
        s.push_str(&format!("\n    \"errors\": {},", count(&self.findings, Severity::Error)));
        s.push_str(&format!("\n    \"warnings\": {},", count(&self.findings, Severity::Warning)));
        s.push_str(&format!(
            "\n    \"waived\": {},",
            self.findings.iter().filter(|f| f.waived).count()
        ));
        s.push_str(&format!("\n    \"unwaivered_errors\": {},", self.unwaivered_errors()));
        s.push_str(&format!("\n    \"files_scanned\": {},", self.files_scanned));
        s.push_str(&format!("\n    \"functions\": {}", self.functions));
        s.push_str("\n  }\n}\n");
        s
    }
}

fn count(fs: &[Finding], sev: Severity) -> usize {
    fs.iter().filter(|f| f.severity == sev).count()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Scoping: which rules apply to which file, at what severity
// ---------------------------------------------------------------------------

/// Per-file rule applicability. `None` = rule off; otherwise the severity
/// for non-test code (test code downgrades new rules to `Warning` and
/// switches legacy rules off, matching the old lint's test exemption).
#[derive(Clone, Copy, Default)]
pub struct FileRules {
    /// collective-divergence, unwaited-request, phase-balance,
    /// rank-variant-payload (the taint walk).
    pub spmd: Option<Severity>,
    pub blocking_collective: Option<Severity>,
    pub nondet: bool,
    pub wall_clock: bool,
    pub unwrap: bool,
    pub recv_unwrap: bool,
    pub float_eq: bool,
    /// discarded-recovery: supervisor code must not `let _ = …` a
    /// receive/wait/promotion result.
    pub discarded_recovery: bool,
}

impl FileRules {
    fn any(&self) -> bool {
        self.spmd.is_some()
            || self.blocking_collective.is_some()
            || self.nondet
            || self.wall_clock
            || self.unwrap
            || self.recv_unwrap
            || self.float_eq
            || self.discarded_recovery
    }
}

/// The workspace scope table. `rel` is repo-relative with forward
/// slashes.
///
/// * SPMD taint rules guard *rank-body* code: `pautoclass/src`, the root
///   `src/`, `examples/`, and `xtask/src` at error severity; test trees
///   at warning (deliberately divergent deadlock tests are expected
///   there). `mpsim/src` is exempt — it *implements* the primitives.
/// * `nondet` guards simulator-core code: `mpsim/src` + `pautoclass/src`
///   + `shmcomm/src` (the native backend's collectives carry the same
///   bitwise-determinism contract as the simulator's).
/// * The legacy rules keep their historical scopes exactly;
///   `blocking-collective` additionally covers tests/examples at
///   warning severity.
pub fn workspace_rules(rel: &str) -> FileRules {
    let mut r = FileRules::default();
    if rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.contains("/fixtures/")
        || rel.starts_with("crates/spmdlint/")
    {
        return r;
    }
    let is_test_tree =
        rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/benches/");
    let rank_body = rel.starts_with("crates/pautoclass/src")
        || rel.starts_with("examples/")
        || rel.starts_with("src/")
        || rel.starts_with("xtask/src");
    if rank_body {
        r.spmd = Some(Severity::Error);
    } else if is_test_tree {
        r.spmd = Some(Severity::Warning);
    }
    r.nondet = (rel.starts_with("crates/mpsim/src")
        || rel.starts_with("crates/pautoclass/src")
        || rel.starts_with("crates/shmcomm/src"))
        && !is_test_tree;
    r.wall_clock = (rel.starts_with("crates/mpsim/src")
        || rel.starts_with("crates/pautoclass/src"))
        && !rel.ends_with("comm.rs");
    r.unwrap = (rel.starts_with("crates/") && rel.contains("/src/") || rel.starts_with("src/"))
        && !rel.contains("src/bin/")
        && !rel.ends_with("main.rs")
        && !is_test_tree;
    r.recv_unwrap = rel.starts_with("crates/mpsim/src")
        || rel.starts_with("crates/pautoclass/src")
        || rel.starts_with("crates/shmcomm/src");
    r.float_eq =
        rel.starts_with("crates/autoclass/src") || rel.starts_with("crates/pautoclass/src");
    // Supervisor code: the fault-tolerant drivers whose receive/wait/
    // promotion results *are* the recovery diagnoses.
    r.discarded_recovery = rel == "crates/pautoclass/src/recover.rs"
        || rel == "crates/pautoclass/src/fleet.rs"
        || rel == "crates/pautoclass/src/driver.rs";
    if rel.starts_with("crates/pautoclass/src") {
        r.blocking_collective = Some(Severity::Error);
    } else if is_test_tree || rel.starts_with("examples/") {
        r.blocking_collective = Some(Severity::Warning);
    }
    r
}

/// Fixture-corpus scope: a `spmdlint.role` marker applies one role to
/// every file under the root.
pub fn role_rules(role: &str) -> FileRules {
    let mut r = FileRules::default();
    match role {
        // Parallel rank-body code: the taint walk plus the loop rule.
        "rank-body" => {
            r.spmd = Some(Severity::Error);
            r.blocking_collective = Some(Severity::Error);
        }
        // Simulator-core code: determinism and the legacy hygiene rules.
        "sim-core" => {
            r.nondet = true;
            r.wall_clock = true;
            r.unwrap = true;
            r.recv_unwrap = true;
            r.float_eq = true;
        }
        // Fault-tolerant supervisor code: recovery results must be
        // acted on, never dropped.
        "supervisor" => {
            r.discarded_recovery = true;
        }
        _ => {}
    }
    r
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct SourceFile {
    rel: String,
    lines: Vec<String>,
    parsed: syn::File,
    rules: FileRules,
}

/// Analyze a root directory. If `<root>/spmdlint.role` exists, its
/// contents name a fixture role applied to every file; otherwise the
/// workspace scope table is used. Waivers come from inline comments and
/// `<root>/spmdlint.waivers`.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let role = std::fs::read_to_string(root.join("spmdlint.role")).ok();
    let waivers = FileWaivers::load(root);
    let mut files = Vec::new();
    for path in rust_files(root) {
        let rel = relpath(root, &path);
        let rules = match &role {
            Some(r) => role_rules(r.trim()),
            None => workspace_rules(&rel),
        };
        // Parse summaries from everything in scope-adjacent dirs, but
        // skip entirely out-of-tree sources.
        if rel.starts_with("vendor/")
            || rel.starts_with("target/")
            || (role.is_none() && rel.contains("/fixtures/"))
        {
            continue;
        }
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let parsed = syn::parse_file(&src).map_err(|e| format!("parse {rel}: {e}"))?;
        let lines = src.lines().map(str::to_string).collect();
        files.push(SourceFile { rel, lines, parsed, rules });
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));

    // Interprocedural summaries over every parsed function.
    let all_fns: Vec<(&str, &syn::ItemFn)> =
        files.iter().flat_map(|f| f.parsed.fns.iter().map(move |i| (f.rel.as_str(), i))).collect();
    let summaries = Summaries::build(&all_fns);

    let mut findings = Vec::new();
    let mut functions = 0;
    for f in &files {
        if !f.rules.any() {
            continue;
        }
        functions += f.parsed.fns.len();
        let mut raw = Vec::new();
        stream::scan_stream(&f.parsed, &f.rules, &mut raw);
        if f.rules.spmd.is_some() || f.rules.blocking_collective.is_some() {
            for item in &f.parsed.fns {
                walk::walk_fn(item, &summaries, &f.rules, &mut raw);
            }
        }
        for mut r in raw {
            r.waived = inline_waived(&f.lines, r.line, r.rule) || waivers.covers(r.rule, &f.rel);
            findings.push(Finding {
                file: f.rel.clone(),
                line: r.line,
                rule: r.rule,
                severity: r.severity,
                message: r.message,
                culprit: r.culprit,
                taint_trace: r.taint_trace,
                waived: r.waived,
            });
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    Ok(Report { findings, files_scanned: files.len(), functions })
}

/// A finding before file attribution (produced by the scanners).
pub(crate) struct RawFinding {
    pub line: usize,
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
    pub culprit: String,
    pub taint_trace: Vec<String>,
    pub waived: bool,
}

impl RawFinding {
    pub(crate) fn new(
        line: usize,
        rule: &'static str,
        severity: Severity,
        message: String,
        culprit: String,
    ) -> Self {
        RawFinding {
            line,
            rule,
            severity,
            message,
            culprit,
            taint_trace: Vec::new(),
            waived: false,
        }
    }
}

fn inline_waived(lines: &[String], line: usize, rule: &str) -> bool {
    let pat = format!("lint:allow({rule})");
    let at = |n: usize| lines.get(n.wrapping_sub(1)).is_some_and(|l| l.contains(&pat));
    at(line) || (line > 1 && at(line - 1))
}

/// Entries from `spmdlint.waivers`: `<rule> <path-prefix> — why`.
struct FileWaivers {
    entries: Vec<(String, String)>,
}

impl FileWaivers {
    fn load(root: &Path) -> Self {
        let text = std::fs::read_to_string(root.join("spmdlint.waivers")).unwrap_or_default();
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
                entries.push((rule.to_string(), path.to_string()));
            }
        }
        FileWaivers { entries }
    }

    fn covers(&self, rule: &str, rel: &str) -> bool {
        self.entries.iter().any(|(r, p)| r == rule && rel.starts_with(p.as_str()))
    }
}

fn relpath(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir).into_iter().flatten().flatten().map(|e| e.path()).collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
            if p.is_dir() {
                if name == "target" || name == ".git" || name == "vendor" {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Map of per-fixture expectations: `EXPECT` files contain `rule:line`
/// lines. Used by the corpus tests and `xtask analyze --fixtures`.
pub fn read_expectations(fixture_root: &Path) -> Vec<(String, usize)> {
    let text = std::fs::read_to_string(fixture_root.join("EXPECT")).unwrap_or_default();
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((rule, ln)) = line.split_once(':') {
            if let Ok(n) = ln.trim().parse::<usize>() {
                out.push((rule.trim().to_string(), n));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_table_matches_the_documented_layout() {
        let lib = workspace_rules("crates/pautoclass/src/driver.rs");
        assert_eq!(lib.spmd, Some(Severity::Error));
        assert_eq!(lib.blocking_collective, Some(Severity::Error));
        assert!(lib.nondet && lib.unwrap && lib.recv_unwrap && lib.float_eq);

        // Supervisor files carry discarded-recovery; plain rank bodies
        // do not.
        assert!(workspace_rules("crates/pautoclass/src/recover.rs").discarded_recovery);
        assert!(workspace_rules("crates/pautoclass/src/fleet.rs").discarded_recovery);
        assert!(!workspace_rules("crates/pautoclass/src/run.rs").discarded_recovery);

        let sim = workspace_rules("crates/mpsim/src/engine.rs");
        assert!(sim.spmd.is_none(), "mpsim implements the primitives");
        assert!(sim.nondet && sim.wall_clock);

        let comm = workspace_rules("crates/mpsim/src/comm.rs");
        assert!(!comm.wall_clock, "comm.rs owns the clock");

        let test_tree = workspace_rules("crates/mpsim/tests/collectives.rs");
        assert_eq!(test_tree.spmd, Some(Severity::Warning));
        assert!(!test_tree.unwrap && !test_tree.nondet);

        // Root binaries and main.rs keep the historical unwrap exemption.
        assert!(!workspace_rules("src/bin/autoclass.rs").unwrap);
        assert!(!workspace_rules("crates/bench/src/main.rs").unwrap);
        assert!(workspace_rules("src/lib.rs").unwrap);

        // The analyzer's own trees are out of scope.
        assert!(!workspace_rules("vendor/syn/src/lib.rs").any());
        assert!(!workspace_rules("crates/spmdlint/src/walk.rs").any());
        assert!(!workspace_rules("crates/spmdlint/tests/fixtures/bad_phase/src/lib.rs").any());
    }

    #[test]
    fn fixture_roles_split_rank_body_from_sim_core() {
        let rb = role_rules("rank-body");
        assert_eq!(rb.spmd, Some(Severity::Error));
        assert!(!rb.nondet && !rb.unwrap);
        let sc = role_rules("sim-core");
        assert!(sc.spmd.is_none());
        assert!(sc.nondet && sc.wall_clock && sc.unwrap && sc.recv_unwrap && sc.float_eq);
        let sup = role_rules("supervisor");
        assert!(sup.discarded_recovery);
        assert!(sup.spmd.is_none() && !sup.nondet && !sup.unwrap);
    }

    #[test]
    fn inline_waivers_cover_same_line_and_line_above() {
        let lines: Vec<String> = vec![
            "// lint:allow(unwrap): covered from above".into(),
            "x.unwrap();".into(),
            "y.unwrap(); // lint:allow(unwrap): same line".into(),
            String::new(),
            "z.unwrap();".into(),
        ];
        assert!(inline_waived(&lines, 2, UNWRAP));
        assert!(inline_waived(&lines, 3, UNWRAP));
        assert!(!inline_waived(&lines, 5, UNWRAP));
        assert!(!inline_waived(&lines, 2, FLOAT_EQ), "rule name must match");
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

/// Run every fixture under `dir`; returns per-fixture missing
/// expectations (empty = all rules fired where expected).
pub fn check_fixtures(dir: &Path) -> Result<BTreeMap<String, Vec<String>>, String> {
    let mut results = BTreeMap::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for fixture in entries {
        let name =
            fixture.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let expected = read_expectations(&fixture);
        let report = analyze(&fixture)?;
        let mut missing = Vec::new();
        for (rule, line) in &expected {
            let hit = report.findings.iter().any(|f| f.rule == rule.as_str() && f.line == *line);
            if !hit {
                missing.push(format!("{rule}:{line} did not fire"));
            }
        }
        results.insert(name, missing);
    }
    Ok(results)
}
