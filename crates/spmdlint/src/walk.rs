//! The per-function rank-taint walk.
//!
//! Walks the statement tree of one function carrying:
//!
//! * **value taint** — identifiers derived from `rank()` (or a
//!   `gather_f64s` root-variant result). Binding a sanitizer call's
//!   result (`allreduce*`, `broadcast*`, `scan`, `allgather`) launders
//!   the taint: post-collective data is replicated by construction.
//! * **shape taint** — buffers whose *length* is rank-variant (tainted
//!   slice bounds, `vec![x; tainted]`). Shape taint does not propagate
//!   through function calls — that would chain every partition view into
//!   a false positive — only through aliasing and indexing.
//! * **request states** — every bound `isend/irecv/iallreduce` handle is
//!   Pending until a `wait`/`waitall` names it (pushing into a Vec
//!   tracks the collection; any other use escapes conservatively).
//! * **phase stack** — `enter_phase`/`exit_phase` balance.
//! * **divergence frames** — open rank-tainted branches. A frame is also
//!   pushed *persistently* when a rank-tainted branch has some-but-not-
//!   all arms diverge (return/break): the remainder of the function then
//!   only runs on a rank-dependent subset — the post-dominator form of
//!   collective divergence.
//!
//! Branches are walked on cloned contexts and joined: taints union,
//! request states join pessimistically (any-Pending stays Pending,
//! any-Escaped wins), and differing phase depths across non-diverging
//! arms are themselves a finding.

use std::collections::{BTreeMap, BTreeSet};

use syn::{Arm, Delim, Expr, ItemFn, Stmt, Tt};

use crate::summary::{collect_calls, has_rank_call, Summaries};
use crate::{
    FileRules, RawFinding, Severity, BLOCKING_COLLECTIVE, BLOCKING_SET, COLLECTIVES,
    COLLECTIVE_DIVERGENCE, PHASE_BALANCE, RANK_VARIANT_PAYLOAD, REQUEST_FNS, SANITIZERS,
    UNWAITED_REQUEST,
};

#[derive(Clone, PartialEq, Eq, Debug)]
enum Req {
    /// `collection` marks handles tracked through a `.push(…)` into a
    /// pre-existing Vec: the *binding* outlives any loop body, so only
    /// function exits (not iteration ends) require it waited.
    Pending {
        posted: usize,
        origin: String,
        collection: bool,
    },
    Waited,
    Escaped,
}

#[derive(Clone, Debug)]
struct Div {
    line: usize,
    desc: String,
}

#[derive(Clone, Default)]
struct Ctx {
    /// value-tainted identifier -> origin description
    tainted: BTreeMap<String, String>,
    /// shape-tainted identifier -> origin description
    shaped: BTreeMap<String, String>,
    reqs: BTreeMap<String, Req>,
    /// identifiers holding a split-child (sub-group) communicator:
    /// `sub`-named parameters plus `.split(...)` bindings
    subcomms: BTreeSet<String>,
    /// lines of currently-open `enter_phase` calls
    phases: Vec<usize>,
    /// open rank-tainted branch frames (innermost last)
    div: Vec<Div>,
    diverged: bool,
}

struct Walker<'a> {
    summaries: &'a Summaries,
    spmd: Option<Severity>,
    blocking: Option<Severity>,
    findings: Option<&'a mut Vec<RawFinding>>,
    loop_depth: usize,
    dedup: BTreeSet<(usize, String)>,
    /// count-only mode (for the divergent-on-tainted-param summary pass)
    divergence_hits: usize,
}

/// Walk one function with the file's rule set, appending findings.
pub(crate) fn walk_fn(
    item: &ItemFn,
    summaries: &Summaries,
    rules: &FileRules,
    out: &mut Vec<RawFinding>,
) {
    let downgrade =
        |s: Option<Severity>| s.map(|sev| if item.is_test { Severity::Warning } else { sev });
    let mut w = Walker {
        summaries,
        spmd: downgrade(rules.spmd),
        blocking: downgrade(rules.blocking_collective),
        findings: Some(out),
        loop_depth: 0,
        dedup: BTreeSet::new(),
        divergence_hits: 0,
    };
    let mut ctx = Ctx::default();
    seed_subcomm_params(&item.params, &mut ctx);
    // A request call in tail-return position of a handle-returning
    // function (`-> Request`, `-> C::Req`, …) escapes to the caller —
    // whose own walk holds it to the wait-on-every-path rule — so it is
    // not a dropped handle here.
    let returns_handle = summaries.get(&item.name).is_some_and(|s| s.returns_request);
    let escaping_tail = match item.body.split_last() {
        Some((Stmt::Expr(Expr::Opaque { tokens, .. }), init)) if returns_handle => {
            let is_request = outermost_call(tokens).is_some_and(|n| {
                REQUEST_FNS.contains(&n) || summaries.get(n).is_some_and(|s| s.returns_request)
            });
            is_request.then_some((init, tokens))
        }
        _ => None,
    };
    match escaping_tail {
        Some((init, tokens)) => {
            w.walk_block(init, &mut ctx);
            w.process_tokens(tokens, &mut ctx, true);
        }
        None => w.walk_block(&item.body, &mut ctx),
    }
    if !ctx.diverged {
        let end = item.body.last().map(stmt_line).unwrap_or(item.line);
        w.exit_checks(&mut ctx, end, "function end", true);
    }
}

/// Which parameters, if rank-tainted, put a collective under a
/// divergent branch? Walked once per parameter (count-only mode) so a
/// call site is flagged only when the taint lands on a parameter that
/// actually steers control flow around a collective — `&self`-style
/// communicator parameters are skipped (a "tainted" communicator is
/// meaningless; every rank's differs by construction).
pub(crate) fn divergent_param_indices(item: &ItemFn, summaries: &Summaries) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for (idx, p) in item.params.iter().enumerate() {
        if p == "comm" || p == "sub" || p == "world" || p.ends_with("comm") {
            continue;
        }
        let mut w = Walker {
            summaries,
            spmd: Some(Severity::Error),
            blocking: None,
            findings: None,
            loop_depth: 0,
            dedup: BTreeSet::new(),
            divergence_hits: 0,
        };
        let mut ctx = Ctx::default();
        seed_subcomm_params(&item.params, &mut ctx);
        ctx.tainted.insert(p.clone(), format!("parameter `{p}` assumed rank-variant"));
        w.walk_block(&item.body, &mut ctx);
        if w.divergence_hits > 0 {
            out.insert(idx);
        }
    }
    out
}

/// Parameters named `sub` (or `*sub`) carry a split-child communicator
/// by repo convention: their collectives synchronize the color group the
/// split carved out, not the world, so rank-dependent paths that mirror
/// the split's own partition are not world divergence (see
/// `handle_collective`). `comm`/`world` parameters get no such pass.
fn seed_subcomm_params(params: &[String], ctx: &mut Ctx) {
    for p in params {
        if p == "sub" || p.ends_with("sub") {
            ctx.subcomms.insert(p.clone());
        }
    }
}

fn stmt_line(s: &Stmt) -> usize {
    match s {
        Stmt::Let { line, .. } => *line,
        Stmt::Expr(e) => e.line(),
    }
}

impl<'a> Walker<'a> {
    fn emit(&mut self, f: RawFinding) {
        if f.rule == COLLECTIVE_DIVERGENCE {
            self.divergence_hits += 1;
        }
        if let Some(out) = self.findings.as_deref_mut() {
            out.push(f);
        }
    }

    fn once(&mut self, line: usize, key: String) -> bool {
        self.dedup.insert((line, key))
    }

    // -- blocks and statements ------------------------------------------

    fn walk_block(&mut self, stmts: &[Stmt], ctx: &mut Ctx) {
        for s in stmts {
            match s {
                Stmt::Let { names, init, else_block, line } => {
                    self.walk_let(names, init.as_ref(), else_block.as_deref(), *line, ctx);
                }
                Stmt::Expr(e) => self.walk_expr(e, ctx),
            }
        }
    }

    fn walk_let(
        &mut self,
        names: &[String],
        init: Option<&Expr>,
        else_block: Option<&[Stmt]>,
        line: usize,
        ctx: &mut Ctx,
    ) {
        let Some(init) = init else { return };
        let mut bound_taint: Option<String> = None;
        let mut bound_shape: Option<String> = None;
        let mut bound_subcomm = false;
        match init {
            Expr::Opaque { tokens, .. } => {
                let outer = outermost_call(tokens);
                bound_subcomm = outer == Some("split");
                let is_request = outer.is_some_and(|n| {
                    REQUEST_FNS.contains(&n)
                        || self.summaries.get(n).is_some_and(|i| i.returns_request)
                });
                if is_request {
                    if let (Some(name), Some(call)) = (names.first(), outer) {
                        ctx.reqs.insert(
                            name.clone(),
                            Req::Pending {
                                posted: line,
                                origin: call.to_string(),
                                collection: false,
                            },
                        );
                    }
                    self.process_tokens(tokens, ctx, true);
                } else {
                    self.process_tokens(tokens, ctx, false);
                }
                let sanitized = outer.is_some_and(|n| SANITIZERS.contains(&n));
                if !sanitized {
                    if let Some(desc) = self.taint_of(tokens, ctx) {
                        bound_taint = Some(desc);
                    } else if token_calls(tokens).contains("gather_f64s") {
                        bound_taint =
                            Some(format!("root-variant gather_f64s result bound at line {line}"));
                    }
                }
                bound_shape = self.shape_of(tokens, ctx, line);
            }
            other => {
                // Control-expression initializer: its value is
                // rank-variant iff the branch condition is.
                if let Some(desc) = self.control_cond_taint(other, ctx) {
                    bound_taint = Some(desc);
                }
                self.walk_expr(other, ctx);
            }
        }
        for n in names {
            match &bound_taint {
                Some(d) => {
                    ctx.tainted.insert(n.clone(), d.clone());
                }
                None => {
                    ctx.tainted.remove(n);
                }
            }
            match &bound_shape {
                Some(d) => {
                    ctx.shaped.insert(n.clone(), d.clone());
                }
                None => {
                    ctx.shaped.remove(n);
                }
            }
            if bound_subcomm {
                ctx.subcomms.insert(n.clone());
            } else {
                ctx.subcomms.remove(n);
            }
        }
        if let Some(eb) = else_block {
            // The else block of `let … else` must diverge; walk it on a
            // clone so its exits are checked but its state dies with it.
            let mut alt = ctx.clone();
            self.walk_block(eb, &mut alt);
        }
    }

    fn control_cond_taint(&mut self, e: &Expr, ctx: &Ctx) -> Option<String> {
        match e {
            Expr::If { cond, .. } => self.taint_of(cond, ctx),
            Expr::Match { scrutinee, .. } => self.taint_of(scrutinee, ctx),
            Expr::Chain { head, rest, .. } => {
                self.control_cond_taint(head, ctx).or_else(|| self.taint_of(rest, ctx))
            }
            Expr::Block { stmts, .. } => match stmts.last() {
                Some(Stmt::Expr(tail)) => self.control_cond_taint(tail, ctx),
                _ => None,
            },
            Expr::Opaque { tokens, .. } => self.taint_of(tokens, ctx),
            _ => None,
        }
    }

    fn walk_expr(&mut self, e: &Expr, ctx: &mut Ctx) {
        match e {
            Expr::If { cond, then_branch, else_branch, line } => {
                self.process_tokens(cond, ctx, false);
                let taint = self.taint_of(cond, ctx);
                let mut then_ctx = ctx.clone();
                if let Some(d) = &taint {
                    then_ctx.div.push(Div { line: *line, desc: d.clone() });
                    // `if let` binders of a tainted scrutinee are tainted.
                    if cond.first().is_some_and(|t| t.is_ident("let")) {
                        for b in syn::pattern_binders(cond) {
                            then_ctx.tainted.insert(b, d.clone());
                        }
                    }
                }
                self.walk_block(then_branch, &mut then_ctx);
                then_ctx.div.truncate(ctx.div.len());
                let mut else_ctx = ctx.clone();
                let has_else = else_branch.is_some();
                if let Some(eb) = else_branch {
                    if let Some(d) = &taint {
                        else_ctx.div.push(Div { line: *line, desc: d.clone() });
                    }
                    self.walk_expr(eb, &mut else_ctx);
                    else_ctx.div.truncate(ctx.div.len());
                }
                self.join2(ctx, then_ctx, else_ctx, has_else, taint, *line);
            }
            Expr::Match { scrutinee, arms, line } => {
                self.process_tokens(scrutinee, ctx, false);
                let taint = self.taint_of(scrutinee, ctx);
                self.walk_arms(arms, ctx, taint, *line);
            }
            Expr::ForLoop { pat, iter, body, line } => {
                self.process_tokens(iter, ctx, false);
                let taint = self.taint_of(iter, ctx);
                let mut body_ctx = ctx.clone();
                if let Some(d) = &taint {
                    body_ctx.div.push(Div { line: *line, desc: format!("loop bound: {d}") });
                    for b in syn::pattern_binders(pat) {
                        body_ctx.tainted.insert(b, d.clone());
                    }
                }
                self.walk_loop_body(body, ctx, body_ctx, *line, taint.is_some());
            }
            Expr::While { cond, body, line } => {
                self.process_tokens(cond, ctx, false);
                let taint = self.taint_of(cond, ctx);
                let mut body_ctx = ctx.clone();
                if let Some(d) = &taint {
                    body_ctx.div.push(Div { line: *line, desc: format!("loop condition: {d}") });
                    if cond.first().is_some_and(|t| t.is_ident("let")) {
                        for b in syn::pattern_binders(cond) {
                            body_ctx.tainted.insert(b, d.clone());
                        }
                    }
                }
                self.walk_loop_body(body, ctx, body_ctx, *line, taint.is_some());
            }
            Expr::Loop { body, line } => {
                let body_ctx = ctx.clone();
                self.walk_loop_body(body, ctx, body_ctx, *line, false);
            }
            Expr::Block { stmts, .. } => self.walk_block(stmts, ctx),
            Expr::Return { value, line } => {
                self.process_tokens(value, ctx, false);
                self.exit_checks(ctx, *line, "return", true);
                ctx.diverged = true;
            }
            Expr::Break { line } | Expr::Continue { line } => {
                let _ = line;
                ctx.diverged = true;
            }
            Expr::Chain { head, rest, .. } => {
                self.walk_expr(head, ctx);
                self.process_tokens(rest, ctx, false);
            }
            Expr::Opaque { tokens, line } => {
                // Re-assignment re-taints (or launders) an existing binding.
                if tokens.len() > 2 && tokens[1].is_punct("=") {
                    if let Some(name) = tokens[0].ident() {
                        let rhs = &tokens[2..];
                        self.process_tokens(rhs, ctx, false);
                        let sanitized =
                            outermost_call(rhs).is_some_and(|n| SANITIZERS.contains(&n));
                        match self.taint_of(rhs, ctx) {
                            Some(d) if !sanitized => {
                                ctx.tainted.insert(name.to_string(), d);
                            }
                            _ => {
                                ctx.tainted.remove(name);
                            }
                        }
                        return;
                    }
                }
                let _ = line;
                self.process_tokens(tokens, ctx, false);
            }
        }
    }

    fn walk_arms(&mut self, arms: &[Arm], ctx: &mut Ctx, taint: Option<String>, line: usize) {
        if arms.is_empty() {
            return;
        }
        let mut results: Vec<Ctx> = Vec::new();
        for arm in arms {
            let mut a = ctx.clone();
            self.process_tokens(&arm.guard, &mut a, false);
            let arm_taint = taint.clone().or_else(|| self.taint_of(&arm.guard, &a));
            if let Some(d) = &arm_taint {
                a.div.push(Div { line, desc: d.clone() });
                for b in syn::pattern_binders(&arm.pat) {
                    a.tainted.insert(b, d.clone());
                }
            }
            self.walk_block(&arm.body, &mut a);
            a.div.truncate(ctx.div.len());
            results.push(a);
        }
        self.join_many(ctx, results, taint, line);
    }

    fn walk_loop_body(
        &mut self,
        body: &[Stmt],
        ctx: &mut Ctx,
        mut body_ctx: Ctx,
        line: usize,
        _tainted: bool,
    ) {
        let phases_before = body_ctx.phases.len();
        let reqs_before: BTreeSet<String> = body_ctx.reqs.keys().cloned().collect();
        self.loop_depth += 1;
        self.walk_block(body, &mut body_ctx);
        self.loop_depth -= 1;
        body_ctx.div.truncate(ctx.div.len());
        if self.spmd.is_some()
            && body_ctx.phases.len() != phases_before
            && self.once(line, "loop-phase".into())
        {
            self.finding_phase(
                line,
                format!(
                    "loop body changes phase depth ({} -> {}): every iteration must balance \
                     enter_phase/exit_phase",
                    phases_before,
                    body_ctx.phases.len()
                ),
                "loop".into(),
            );
        }
        if self.spmd.is_some() {
            for (name, st) in &body_ctx.reqs {
                if reqs_before.contains(name) {
                    continue;
                }
                // Handles pushed into a collection declared before the
                // loop legitimately outlive the iteration (waitall after
                // the loop); only a `let`-bound handle dies with it.
                if let Req::Pending { posted, origin, collection: false } = st {
                    if self.once(*posted, format!("loop-req-{name}")) {
                        self.finding_request(
                            *posted,
                            format!(
                                "request `{name}` ({origin}, posted at line {posted}) is not \
                                 waited by the end of the loop body; its binding dies with the \
                                 iteration"
                            ),
                            name.clone(),
                        );
                    }
                }
            }
        }
        // Join the zero-iteration and walked-once states.
        let results = vec![body_ctx];
        self.join_many(ctx, results, None, line);
        ctx.diverged = false;
    }

    // -- joins ----------------------------------------------------------

    fn join2(
        &mut self,
        ctx: &mut Ctx,
        then_ctx: Ctx,
        else_ctx: Ctx,
        has_else: bool,
        taint: Option<String>,
        line: usize,
    ) {
        let mut arms = vec![then_ctx];
        // No else branch = an empty arm with the original state.
        arms.push(if has_else { else_ctx } else { ctx.clone() });
        self.join_many(ctx, arms, taint, line);
    }

    fn join_many(&mut self, ctx: &mut Ctx, arms: Vec<Ctx>, taint: Option<String>, line: usize) {
        let live: Vec<&Ctx> = arms.iter().filter(|a| !a.diverged).collect();
        // Phase depths must agree across all arms that fall through.
        if self.spmd.is_some() && live.len() > 1 {
            let first = live[0].phases.len();
            if live.iter().any(|a| a.phases.len() != first) && self.once(line, "phase-join".into())
            {
                let depths: Vec<String> = live.iter().map(|a| a.phases.len().to_string()).collect();
                self.finding_phase(
                    line,
                    format!(
                        "branch arms leave different phase depths ({}): \
                         enter_phase/exit_phase must balance on every path",
                        depths.join(" vs ")
                    ),
                    "branch".into(),
                );
            }
        }
        let any_live = !live.is_empty();
        let some_diverged = arms.iter().any(|a| a.diverged);
        // Adopt a live arm's phase stack (they agree, or we just reported).
        if let Some(l) = live.first() {
            ctx.phases = l.phases.clone();
        } else if let Some(a) = arms.first() {
            ctx.phases = a.phases.clone();
        }
        // Taints and shapes union.
        for a in &arms {
            for (k, v) in &a.tainted {
                ctx.tainted.entry(k.clone()).or_insert_with(|| v.clone());
            }
            for (k, v) in &a.shaped {
                ctx.shaped.entry(k.clone()).or_insert_with(|| v.clone());
            }
        }
        // Requests join pessimistically over live arms (a diverged arm
        // already had its exit checked).
        let mut keys: BTreeSet<String> = BTreeSet::new();
        for a in &arms {
            keys.extend(a.reqs.keys().cloned());
        }
        for k in keys {
            let states: Vec<&Req> = live.iter().filter_map(|a| a.reqs.get(&k)).collect();
            let joined = if states.is_empty() {
                arms.iter().find_map(|a| a.reqs.get(&k)).cloned()
            } else if states.iter().any(|s| matches!(s, Req::Escaped)) {
                Some(Req::Escaped)
            } else if let Some(p) = states.iter().find(|s| matches!(s, Req::Pending { .. })) {
                Some((*p).clone())
            } else {
                Some(Req::Waited)
            };
            if let Some(j) = joined {
                ctx.reqs.insert(k, j);
            }
        }
        ctx.diverged = !any_live;
        // Post-dominator divergence: a rank-tainted branch where some
        // (but not all) arms diverge leaves the rest of the function
        // running on a rank-dependent subset of ranks.
        if let Some(d) = taint {
            if some_diverged && any_live {
                ctx.div.push(Div {
                    line,
                    desc: format!("rank-dependent early exit at line {line}: {d}"),
                });
            }
        }
    }

    // -- exits ----------------------------------------------------------

    fn exit_checks(&mut self, ctx: &mut Ctx, line: usize, kind: &str, check_phases: bool) {
        if self.spmd.is_none() {
            return;
        }
        for (name, st) in &ctx.reqs {
            if let Req::Pending { posted, origin, .. } = st {
                if self.once(line, format!("exit-req-{name}")) {
                    self.finding_request(
                        line,
                        format!(
                            "request `{name}` ({origin}, posted at line {posted}) is not \
                             waited before {kind}"
                        ),
                        name.clone(),
                    );
                }
            }
        }
        if check_phases {
            for opened in ctx.phases.clone() {
                if self.once(line, format!("exit-phase-{opened}")) {
                    self.finding_phase(
                        line,
                        format!("phase entered at line {opened} is still open at {kind}"),
                        "enter_phase".into(),
                    );
                }
            }
        }
    }

    // -- token-level scanning -------------------------------------------

    /// Scan an opaque token run: collective call sites (divergence,
    /// payload shapes, blocking-in-loop), request posting/waiting/escape,
    /// phase push/pop, `?` early exits, and nested closure bodies.
    fn process_tokens(&mut self, ts: &[Tt], ctx: &mut Ctx, suppress_outermost_request: bool) {
        let mut i = 0;
        while i < ts.len() {
            // `?` is a fn-level early exit for pending requests.
            if ts[i].is_punct("?") {
                self.exit_checks(ctx, ts[i].line(), "`?` exit", false);
                i += 1;
                continue;
            }
            // Method or path call: Ident + ParenGroup.
            if let (Some(name), Some(Tt::Group { delim: Delim::Paren, tokens: args, .. })) =
                (ts[i].ident().map(str::to_string), ts.get(i + 1))
            {
                let line = ts[i].line();
                let is_outermost = i + 2 == ts.len();
                match name.as_str() {
                    "push" => {
                        let inner_req = outermost_call(args).is_some_and(|n| {
                            REQUEST_FNS.contains(&n)
                                || self.summaries.get(n).is_some_and(|s| s.returns_request)
                        });
                        if inner_req {
                            if let Some(recv) = receiver_ident(ts, i) {
                                ctx.reqs.insert(
                                    recv,
                                    Req::Pending {
                                        posted: line,
                                        origin: outermost_call(args)
                                            .unwrap_or("request")
                                            .to_string(),
                                        collection: true,
                                    },
                                );
                            }
                            self.process_tokens(args, ctx, true);
                            i += 2;
                            continue;
                        }
                    }
                    "wait" | "waitall" => {
                        let mut named = BTreeSet::new();
                        idents_in(args, &mut named);
                        if let Some(recv) = receiver_ident(ts, i) {
                            named.insert(recv);
                        }
                        for n in named {
                            if ctx.reqs.contains_key(&n) {
                                ctx.reqs.insert(n, Req::Waited);
                            }
                        }
                        i += 2;
                        continue;
                    }
                    "enter_phase" => {
                        ctx.phases.push(line);
                        i += 2;
                        continue;
                    }
                    "exit_phase" => {
                        if ctx.phases.pop().is_none()
                            && self.spmd.is_some()
                            && self.once(line, "exit-unopened".into())
                        {
                            self.finding_phase(
                                line,
                                "exit_phase with no open phase on this path".into(),
                                "exit_phase".into(),
                            );
                        }
                        i += 2;
                        continue;
                    }
                    _ => {}
                }
                if COLLECTIVES.contains(&name.as_str()) {
                    let recv = receiver_ident(ts, i);
                    self.handle_collective(&name, args, line, recv, ctx);
                    if REQUEST_FNS.contains(&name.as_str())
                        && !(suppress_outermost_request && is_outermost)
                    {
                        self.request_dropped(&name, line);
                    }
                    self.process_tokens(args, ctx, false);
                    i += 2;
                    continue;
                }
                if REQUEST_FNS.contains(&name.as_str()) {
                    if !(suppress_outermost_request && is_outermost) {
                        self.request_dropped(&name, line);
                    }
                    self.process_tokens(args, ctx, false);
                    i += 2;
                    continue;
                }
                // Workspace function with a summary.
                if let Some(info) = self.summaries.get(&name).cloned() {
                    if let Some(chain) = &info.collective {
                        if self.spmd.is_some() {
                            self.divergence_at(
                                line,
                                ctx,
                                &format!("call to `{name}` (reaching collective `{chain}`)"),
                                &name,
                            );
                        }
                        // Transitive blocking calls are collective-
                        // divergence's business, not the legacy rule's.
                    }
                    if !info.divergent_params.is_empty() && self.spmd.is_some() {
                        // Positional: only an argument feeding a
                        // divergence-steering parameter is a finding.
                        let parts = syn::split_top(args, ",");
                        for &idx in &info.divergent_params {
                            let Some(part) = parts.get(idx) else { continue };
                            let Some(origin) = self.taint_of(part, ctx) else { continue };
                            if self.once(line, format!("div-arg-{name}-{idx}")) {
                                let sev = self.spmd.unwrap_or(Severity::Error);
                                let mut f = RawFinding::new(
                                    line,
                                    COLLECTIVE_DIVERGENCE,
                                    sev,
                                    format!(
                                        "rank-variant argument (position {idx}) passed to \
                                         `{name}`, which branches on that parameter around \
                                         a collective"
                                    ),
                                    format!("{name}(#{idx})"),
                                );
                                f.taint_trace = vec![origin];
                                self.emit(f);
                            }
                        }
                    }
                    if info.returns_request && !(suppress_outermost_request && is_outermost) {
                        self.request_dropped(&name, line);
                    }
                    self.process_tokens(args, ctx, false);
                    i += 2;
                    continue;
                }
                self.process_tokens(args, ctx, false);
                i += 2;
                continue;
            }
            match &ts[i] {
                // Plain identifier: a pending request used any other way
                // escapes the analysis (conservatively no finding).
                Tt::Ident { text, .. } => {
                    if matches!(ctx.reqs.get(text), Some(Req::Pending { .. }))
                        && !benign_request_use(ts, i)
                    {
                        ctx.reqs.insert(text.clone(), Req::Escaped);
                    }
                }
                Tt::Group { delim: Delim::Brace, tokens, .. } => {
                    // Closure or block body inside an expression: walk it
                    // as real code (this is how `run_spmd(|comm| { … })`
                    // rank bodies are analyzed).
                    let stmts = syn::parse_stmts(tokens);
                    self.walk_block(&stmts, ctx);
                }
                Tt::Group { tokens, .. } => self.process_tokens(tokens, ctx, false),
                _ => {}
            }
            i += 1;
        }
    }

    fn handle_collective(
        &mut self,
        name: &str,
        args: &[Tt],
        line: usize,
        recv: Option<String>,
        ctx: &mut Ctx,
    ) {
        // A collective on a split child only synchronizes its color
        // group, whose membership is exactly the ranks the split sent
        // down this path — so a rank-dependent branch (the secede /
        // shrink pattern) is not world divergence for it. Payload-shape
        // and blocking rules still apply within the group.
        let on_group = recv.as_deref().is_some_and(|r| ctx.subcomms.contains(r));
        if self.spmd.is_some() {
            if !on_group {
                self.divergence_at(line, ctx, &format!("collective `{name}`"), name);
            }
            if name != "split" {
                self.payload_checks(name, args, line, ctx);
            }
        }
        if self.blocking_on_loop(name) && self.once(line, format!("blocking-{name}")) {
            let sev = self.blocking.unwrap_or(Severity::Error);
            self.emit(RawFinding::new(
                line,
                BLOCKING_COLLECTIVE,
                sev,
                format!(
                    "`.{name}(` inside a loop body pays a message latency per iteration: \
                     batch the payload or post `iallreduce_f64s`, or waive with \
                     `// lint:allow(blocking-collective): why`"
                ),
                name.to_string(),
            ));
        }
    }

    fn blocking_on_loop(&self, name: &str) -> bool {
        self.blocking.is_some() && self.loop_depth > 0 && BLOCKING_SET.contains(&name)
    }

    /// Rule 1 at a reachable collective: one finding per open divergence
    /// frame (anchored at the first collective that trips it).
    fn divergence_at(&mut self, line: usize, ctx: &Ctx, what: &str, culprit: &str) {
        let Some(frame) = ctx.div.last().cloned() else { return };
        if !self.once(frame.line, "divergence".into()) {
            return;
        }
        let sev = self.spmd.unwrap_or(Severity::Error);
        let mut f = RawFinding::new(
            line,
            COLLECTIVE_DIVERGENCE,
            sev,
            format!(
                "{what} is reachable under a rank-dependent branch (line {}): every rank \
                 must execute the same collective sequence",
                frame.line
            ),
            culprit.to_string(),
        );
        f.taint_trace = ctx.div.iter().map(|d| format!("line {}: {}", d.line, d.desc)).collect();
        self.emit(f);
    }

    /// Rule 4: rank-variant payload shapes at a collective call site.
    fn payload_checks(&mut self, name: &str, args: &[Tt], line: usize, ctx: &Ctx) {
        let sev = self.spmd.unwrap_or(Severity::Error);
        // (a) a rank-variant range width inside an index group
        if let Some(culprit) = self.tainted_bracket(args, ctx) {
            if self.once(line, format!("payload-br-{name}")) {
                let mut f = RawFinding::new(
                    line,
                    RANK_VARIANT_PAYLOAD,
                    sev,
                    format!(
                        "rank-tainted length/index expression in the payload of `{name}`: \
                         collective payload shapes must be identical on every rank"
                    ),
                    culprit.clone(),
                );
                if let Some(origin) = ctx.tainted.get(&culprit) {
                    f.taint_trace = vec![origin.clone()];
                }
                self.emit(f);
            }
            return;
        }
        // (b) a shape-tainted buffer passed whole
        let mut names = BTreeSet::new();
        idents_in(args, &mut names);
        if let Some(shaped) = names.iter().find(|n| ctx.shaped.contains_key(n.as_str())) {
            if self.once(line, format!("payload-sh-{name}")) {
                let mut f = RawFinding::new(
                    line,
                    RANK_VARIANT_PAYLOAD,
                    sev,
                    format!(
                        "buffer `{shaped}` with a rank-variant length is passed to `{name}`: \
                         collective payload shapes must be identical on every rank"
                    ),
                    shaped.clone(),
                );
                if let Some(origin) = ctx.shaped.get(shaped.as_str()) {
                    f.taint_trace = vec![origin.clone()];
                }
                self.emit(f);
            }
            return;
        }
        // (c) rank() directly in a non-payload argument slot (e.g. a
        // rank-variant root).
        if has_rank_call(args) && self.once(line, format!("payload-rk-{name}")) {
            self.emit(RawFinding::new(
                line,
                RANK_VARIANT_PAYLOAD,
                sev,
                format!(
                    "`rank()` appears in an argument of `{name}`: roots and counts at \
                     collective call sites must be rank-invariant"
                ),
                format!("{name}(rank())"),
            ));
        }
    }

    fn request_dropped(&mut self, name: &str, line: usize) {
        if self.spmd.is_none() || !self.once(line, format!("dropped-{name}")) {
            return;
        }
        let sev = self.spmd.unwrap_or(Severity::Error);
        self.emit(RawFinding::new(
            line,
            UNWAITED_REQUEST,
            sev,
            format!(
                "the `Request` returned by `{name}` is discarded without being bound or \
                 waited: the operation may never complete"
            ),
            name.to_string(),
        ));
    }

    fn finding_phase(&mut self, line: usize, message: String, culprit: String) {
        let sev = self.spmd.unwrap_or(Severity::Error);
        self.emit(RawFinding::new(line, PHASE_BALANCE, sev, message, culprit));
    }

    fn finding_request(&mut self, line: usize, message: String, culprit: String) {
        let sev = self.spmd.unwrap_or(Severity::Error);
        self.emit(RawFinding::new(line, UNWAITED_REQUEST, sev, message, culprit));
    }

    // -- taint ----------------------------------------------------------

    /// Is this expression rank-tainted? Returns a one-line origin
    /// description.
    ///
    /// The lattice tracks *structural* rank-dependence (values computed
    /// from the rank id), not content variance — in SPMD code every
    /// data value differs across ranks by design, so content taint
    /// would mark everything. Concretely:
    ///
    /// * tainted identifiers propagate through arithmetic, grouping
    ///   parens, indexing, and method-call *receivers* (`part.len()`);
    /// * they do NOT propagate through ordinary call *arguments*
    ///   (`estep(&view)` returns locally-computed content, assumed
    ///   structure-replicated) — except identity-like conversions
    ///   (`usize::from(x)`, `.clone()`…), which stay transparent;
    /// * `rank()` / returns-rank calls are taint sources at any depth,
    ///   including inside call arguments (`Partition::new(comm.rank())`
    ///   yields a rank-derived partition descriptor);
    /// * brace groups (struct literals, closure bodies) are skipped.
    fn taint_of(&self, ts: &[Tt], ctx: &Ctx) -> Option<String> {
        for (i, t) in ts.iter().enumerate() {
            match t {
                Tt::Ident { text, line } => {
                    let is_call =
                        matches!(ts.get(i + 1), Some(Tt::Group { delim: Delim::Paren, .. }));
                    if is_call {
                        if text == "rank" {
                            return Some(format!("rank() at line {line}"));
                        }
                        if self.summaries.returns_rank(text) {
                            return Some(format!("`{text}()` returns a rank-derived value"));
                        }
                        continue;
                    }
                    if let Some(origin) = ctx.tainted.get(text) {
                        return Some(format!("`{text}` is rank-tainted ({origin})"));
                    }
                    if let Some(origin) = ctx.shaped.get(text) {
                        return Some(format!("`{text}` has a rank-variant shape ({origin})"));
                    }
                }
                Tt::Group { delim: Delim::Paren, tokens, .. } => {
                    let callee = if i > 0 { ts[i - 1].ident() } else { None };
                    match callee {
                        Some(name) if !transparent_call(name) => {
                            // Opaque call arguments: only rank *sources*
                            // leak out, tainted idents do not.
                            if let Some(d) = self.rank_source_in(tokens) {
                                return Some(d);
                            }
                        }
                        _ => {
                            if let Some(d) = self.taint_of(tokens, ctx) {
                                return Some(d);
                            }
                        }
                    }
                }
                Tt::Group { delim: Delim::Bracket, tokens, .. } => {
                    if let Some(d) = self.taint_of(tokens, ctx) {
                        return Some(d);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// A `rank()` or returns-rank call at any (non-brace) depth.
    fn rank_source_in(&self, ts: &[Tt]) -> Option<String> {
        for (i, t) in ts.iter().enumerate() {
            match t {
                Tt::Ident { text, line } => {
                    if matches!(ts.get(i + 1), Some(Tt::Group { delim: Delim::Paren, .. })) {
                        if text == "rank" {
                            return Some(format!("rank() at line {line}"));
                        }
                        if self.summaries.returns_rank(text) {
                            return Some(format!("`{text}()` returns a rank-derived value"));
                        }
                    }
                }
                Tt::Group { delim, tokens, .. } if *delim != Delim::Brace => {
                    if let Some(d) = self.rank_source_in(tokens) {
                        return Some(d);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// A bracket group whose *range* has a rank-variant width; returns
    /// the culprit identifier (or "rank()").
    ///
    /// Exactly one variant side means a variant width (`&buf[..counts]`,
    /// `&data[offset..]` with tainted `offset`). Both sides variant is
    /// the block-decomposition idiom — `&data[r * n..(r + 1) * n]` —
    /// whose width is rank-invariant, and a plain index (`buf[r]`) never
    /// changes the payload length; neither is flagged.
    fn tainted_bracket(&self, ts: &[Tt], ctx: &Ctx) -> Option<String> {
        for t in ts {
            if let Tt::Group { delim, tokens, .. } = t {
                if *delim == Delim::Bracket {
                    if let Some(c) = self.variant_range(tokens, ctx) {
                        return Some(c);
                    }
                }
                if *delim != Delim::Brace {
                    if let Some(c) = self.tainted_bracket(tokens, ctx) {
                        return Some(c);
                    }
                }
            }
        }
        None
    }

    fn variant_range(&self, tokens: &[Tt], ctx: &Ctx) -> Option<String> {
        let split = tokens.iter().position(|t| t.is_punct("..") || t.is_punct("..="))?;
        let lo = self.range_side_culprit(&tokens[..split], ctx);
        let hi = self.range_side_culprit(&tokens[split + 1..], ctx);
        match (lo, hi) {
            (Some(c), None) | (None, Some(c)) => Some(c),
            _ => None,
        }
    }

    /// Range bounds are *lengths*, so plain conservative ident matching
    /// is right here (a bound of `f(part)` is rank-variant even though
    /// `f`'s result would launder value taint).
    fn range_side_culprit(&self, ts: &[Tt], ctx: &Ctx) -> Option<String> {
        if ts.is_empty() {
            return None;
        }
        if has_rank_call(ts) {
            return Some("rank()".into());
        }
        let mut names = BTreeSet::new();
        idents_in(ts, &mut names);
        names
            .iter()
            .find(|n| ctx.tainted.contains_key(n.as_str()) || ctx.shaped.contains_key(n.as_str()))
            .cloned()
    }

    /// Shape taint for a binding: aliasing a shaped buffer, indexing
    /// with a tainted range, or `vec![x; tainted]`. Deliberately does
    /// NOT propagate through function calls.
    fn shape_of(&self, ts: &[Tt], ctx: &Ctx, line: usize) -> Option<String> {
        // Alias: `let y = x;` / `let y = &mut x;`
        let idents: Vec<&str> = ts.iter().filter_map(Tt::ident).collect();
        if idents.len() == 1 && ts.len() <= 3 {
            if let Some(origin) = ctx.shaped.get(idents[0]) {
                return Some(origin.clone());
            }
        }
        // vec![x; tainted] — a macro bracket with a `;` and taint after it.
        for (i, t) in ts.iter().enumerate() {
            if t.is_ident("vec") && matches!(ts.get(i + 1), Some(p) if p.is_punct("!")) {
                if let Some(Tt::Group { tokens: inner, .. }) = ts.get(i + 2) {
                    if let Some(semi) = inner.iter().position(|t| t.is_punct(";")) {
                        if self.taint_of(&inner[semi + 1..], ctx).is_some() {
                            return Some(format!("rank-variant vec! length at line {line}"));
                        }
                    }
                }
            }
        }
        // Indexing with a rank-variant-width range: `&data[..n]`, tainted n.
        if self.tainted_bracket(ts, ctx).is_some() {
            return Some(format!("slice with rank-variant bounds at line {line}"));
        }
        None
    }
}

/// The outermost trailing call in a token run: `recv.chain().name(args)`
/// — the run's last token is the args group, the token before it the
/// callee name.
fn outermost_call(ts: &[Tt]) -> Option<&str> {
    let n = ts.len();
    if n >= 2 {
        if let (Some(Tt::Ident { text, .. }), Some(Tt::Group { delim: Delim::Paren, .. })) =
            (ts.get(n - 2), ts.get(n - 1))
        {
            return Some(text);
        }
    }
    None
}

/// The receiver identifier of a method call at `ts[i]`: the identifier
/// just before the `.`.
fn receiver_ident(ts: &[Tt], i: usize) -> Option<String> {
    if i >= 2 && ts[i - 1].is_punct(".") {
        if let Tt::Ident { text, .. } = &ts[i - 2] {
            return Some(text.clone());
        }
    }
    None
}

/// Uses of a pending request ident that do not escape it.
fn benign_request_use(ts: &[Tt], i: usize) -> bool {
    // `reqs.push(…)` / `reqs.len()` / `comm.wait(&mut req)` arguments are
    // handled by the call scanner; here we only whitelist method-call
    // receivers of harmless methods and `&mut x` borrows (which feed
    // wait/waitall at an outer level).
    if matches!(ts.get(i + 1), Some(t) if t.is_punct("."))
        && matches!(
            ts.get(i + 2).and_then(|t| t.ident()),
            Some(
                "push"
                    | "wait"
                    | "waitall"
                    | "len"
                    | "is_empty"
                    | "as_mut_slice"
                    | "iter_mut"
                    | "last_mut"
                    | "clear"
            )
        )
    {
        return true;
    }
    if i >= 1 && ts[i - 1].is_ident("mut") && i >= 2 && ts[i - 2].is_punct("&") {
        return true;
    }
    false
}

/// All identifiers in a token run, recursively.
fn idents_in(ts: &[Tt], out: &mut BTreeSet<String>) {
    for t in ts {
        match t {
            Tt::Ident { text, .. } => {
                out.insert(text.clone());
            }
            Tt::Group { tokens, .. } => idents_in(tokens, out),
            _ => {}
        }
    }
}

/// Calls whose result keeps the taint of their arguments: identity-like
/// conversions and clamps. Everything else launders value taint (its
/// result is assumed structure-replicated — see `taint_of`).
fn transparent_call(name: &str) -> bool {
    matches!(
        name,
        "from"
            | "try_from"
            | "into"
            | "clone"
            | "cloned"
            | "copied"
            | "to_vec"
            | "to_owned"
            | "min"
            | "max"
            | "abs"
            | "Some"
            | "Ok"
            | "Err"
            | "unwrap"
            | "expect"
            | "unwrap_or"
            | "unwrap_or_else"
            | "saturating_add"
            | "saturating_sub"
            | "checked_add"
            | "checked_sub"
            | "wrapping_add"
            | "wrapping_sub"
            | "rem_euclid"
    )
}

/// Called names within a token run (free and method calls).
fn token_calls(ts: &[Tt]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_calls(ts, &mut out);
    out
}
