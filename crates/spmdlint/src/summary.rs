//! Per-function summaries and the interprocedural call graph.
//!
//! Summaries are keyed by the function's terminal name (method calls and
//! path calls both resolve by last segment); same-named functions merge
//! conservatively (any-true wins, first collective chain wins). That is
//! deliberately coarse — the analyzer prefers a rare conservative
//! finding, which a waiver can silence, over a missed divergence.

use std::collections::{BTreeMap, BTreeSet};

use syn::{Delim, ItemFn, Tt};

use crate::{COLLECTIVES, REQUEST_FNS};

/// What the taint walk needs to know about a callee without re-walking
/// it at every call site.
#[derive(Clone, Default, Debug)]
pub struct FnInfo {
    /// `Some(chain)` if calling this function executes a collective on a
    /// *world* communicator: either directly (`"allreduce_f64s"`) or
    /// transitively (`"helper -> allreduce_f64s"`).
    pub collective: Option<String>,
    /// `Some(chain)` if this function's only collectives run on a
    /// split-child communicator (a `sub`-named parameter or a
    /// `.split(...)` binding). Those synchronize the split's color group
    /// — whose membership is exactly the ranks that took the calling
    /// path — so a call site under a rank-dependent branch is not world
    /// divergence (the secede / shrink-recovery pattern).
    pub group_collective: Option<String>,
    /// The return value is derived from `rank()` (so binding a call
    /// result propagates rank taint).
    pub returns_rank: bool,
    /// The return type is a `Request` handle (so binding a call result
    /// creates a handle that must be waited).
    pub returns_request: bool,
    /// Parameter positions that, if rank-tainted, steer control flow
    /// around a collective inside this function: passing a rank-variant
    /// argument there at a call site is itself a divergence.
    pub divergent_params: BTreeSet<usize>,
}

pub struct Summaries {
    map: BTreeMap<String, FnInfo>,
}

impl Summaries {
    pub fn get(&self, name: &str) -> Option<&FnInfo> {
        self.map.get(name)
    }

    pub fn returns_rank(&self, name: &str) -> bool {
        self.map.get(name).is_some_and(|i| i.returns_rank)
    }

    pub fn empty() -> Self {
        Summaries { map: BTreeMap::new() }
    }

    /// Build summaries for a set of functions, running the collective /
    /// returns-rank fixpoint over the call graph, then the
    /// tainted-param divergence pass (which needs the stable
    /// summaries).
    pub fn build(fns: &[(&str, &ItemFn)]) -> Self {
        // Local facts per function name.
        let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut tail_calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut map: BTreeMap<String, FnInfo> = BTreeMap::new();
        // `rank()` itself is the taint source.
        map.insert("rank".into(), FnInfo { returns_rank: true, ..FnInfo::default() });

        for (_, f) in fns {
            let entry = map.entry(f.name.clone()).or_default();
            let mut body_tokens = Vec::new();
            collect_stmt_tokens(&f.body, &mut body_tokens);

            let mut called = BTreeSet::new();
            collect_calls(&body_tokens, &mut called);
            // Receivers that hold a split-child communicator: `sub`-named
            // parameters plus `.split(...)` bindings anywhere in the body
            // (a flat, flow-insensitive set — deliberately permissive in
            // the direction the runtime verifier still covers per group).
            let mut group_recv: BTreeSet<String> = f
                .params
                .iter()
                .filter(|p| p.as_str() == "sub" || p.ends_with("sub"))
                .cloned()
                .collect();
            collect_split_bindings(&f.body, &mut group_recv);
            classify_collectives(
                &body_tokens,
                &group_recv,
                &mut entry.collective,
                &mut entry.group_collective,
            );
            calls.entry(f.name.clone()).or_default().extend(called);

            // Return type mentions a request handle → must be waited by
            // the caller. `Request` is the concrete mpsim handle; `Req`
            // covers the `Communicator` trait's associated type in
            // generic code (`C::Req`, `Self::Req`) and the native
            // backend's `NativeReq`.
            let after_arrow = f.sig.iter().skip_while(|t| !t.is_punct("->"));
            if after_arrow
                .clone()
                .any(|t| t.is_ident("Request") || t.is_ident("Req") || t.is_ident("NativeReq"))
            {
                entry.returns_request = true;
            }
            if REQUEST_FNS.contains(&f.name.as_str()) {
                entry.returns_request = true;
            }

            // Calls in return position, for the returns-rank fixpoint.
            let mut tails = BTreeSet::new();
            collect_return_position_calls(&f.body, &mut tails);
            if return_position_has_rank_call(&f.body) {
                entry.returns_rank = true;
            }
            tail_calls.entry(f.name.clone()).or_default().extend(tails);
        }

        // Fixpoint: collective reachability and returns-rank.
        loop {
            let mut changed = false;
            let names: Vec<String> = map.keys().cloned().collect();
            for name in &names {
                let callees = calls.get(name).cloned().unwrap_or_default();
                if map.get(name).and_then(|i| i.collective.clone()).is_none() {
                    for c in &callees {
                        // Call sites of the primitives themselves were
                        // already classified by receiver; propagating the
                        // primitive's *implementation* summary through this
                        // receiver-blind edge would re-world-ify them.
                        if COLLECTIVES.contains(&c.as_str()) {
                            continue;
                        }
                        if let Some(chain) = map.get(c).and_then(|i| i.collective.clone()) {
                            if let Some(e) = map.get_mut(name) {
                                let via = if chain.contains("->") || c != &chain {
                                    format!("{c} -> {chain}")
                                } else {
                                    chain
                                };
                                e.collective = Some(via);
                                changed = true;
                            }
                            break;
                        }
                    }
                }
                if map.get(name).and_then(|i| i.group_collective.clone()).is_none() {
                    for c in &callees {
                        if COLLECTIVES.contains(&c.as_str()) {
                            continue;
                        }
                        if let Some(chain) = map.get(c).and_then(|i| i.group_collective.clone()) {
                            if let Some(e) = map.get_mut(name) {
                                let via = if chain.contains("->") || c != &chain {
                                    format!("{c} -> {chain}")
                                } else {
                                    chain
                                };
                                e.group_collective = Some(via);
                                changed = true;
                            }
                            break;
                        }
                    }
                }
                let tails = tail_calls.get(name).cloned().unwrap_or_default();
                if !map.get(name).is_some_and(|i| i.returns_rank) {
                    let derived = tails.iter().any(|c| map.get(c).is_some_and(|i| i.returns_rank));
                    if derived {
                        if let Some(e) = map.get_mut(name) {
                            e.returns_rank = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut summaries = Summaries { map };

        // Divergent-parameter pass: with the collective summaries
        // stable, re-walk each body once per parameter, pretending only
        // that parameter is rank-tainted, and record the positions that
        // put a collective under a branch. Updating the map as we go
        // lets later functions see earlier ones' divergent positions
        // (one round of transitive propagation; deeper chains surface
        // at the callee's own call sites).
        for (_, f) in fns {
            let idxs = crate::walk::divergent_param_indices(f, &summaries);
            if !idxs.is_empty() {
                if let Some(e) = summaries.map.get_mut(&f.name) {
                    e.divergent_params.extend(idxs);
                }
            }
        }
        summaries
    }
}

/// Flatten a statement tree back into its token sequences (branch
/// conditions, bodies, opaque runs — everything).
fn collect_stmt_tokens(stmts: &[syn::Stmt], out: &mut Vec<Tt>) {
    use syn::{Expr, Stmt};
    for s in stmts {
        match s {
            Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    collect_expr_tokens(e, out);
                }
                if let Some(b) = else_block {
                    collect_stmt_tokens(b, out);
                }
            }
            Stmt::Expr(e) => collect_expr_tokens(e, out),
        }
    }
    fn collect_expr_tokens(e: &Expr, out: &mut Vec<Tt>) {
        match e {
            Expr::If { cond, then_branch, else_branch, .. } => {
                out.extend(cond.iter().cloned());
                collect_stmt_tokens(then_branch, out);
                if let Some(e) = else_branch {
                    collect_expr_tokens(e, out);
                }
            }
            Expr::Match { scrutinee, arms, .. } => {
                out.extend(scrutinee.iter().cloned());
                for a in arms {
                    out.extend(a.guard.iter().cloned());
                    collect_stmt_tokens(&a.body, out);
                }
            }
            Expr::ForLoop { iter, body, .. } => {
                out.extend(iter.iter().cloned());
                collect_stmt_tokens(body, out);
            }
            Expr::While { cond, body, .. } => {
                out.extend(cond.iter().cloned());
                collect_stmt_tokens(body, out);
            }
            Expr::Loop { body, .. } | Expr::Block { stmts: body, .. } => {
                collect_stmt_tokens(body, out);
            }
            Expr::Return { value, .. } => out.extend(value.iter().cloned()),
            Expr::Break { .. } | Expr::Continue { .. } => {}
            Expr::Chain { head, rest, .. } => {
                collect_expr_tokens(head, out);
                out.extend(rest.iter().cloned());
            }
            Expr::Opaque { tokens, .. } => out.extend(tokens.iter().cloned()),
        }
    }
}

/// Classify every collective call site by its receiver: `sub.barrier()`
/// with `sub` in `group_recv` is a group collective, anything else
/// (including receiver-less calls) is a world collective. First hit of
/// each kind wins, matching the world-only rule this generalizes.
fn classify_collectives(
    ts: &[Tt],
    group_recv: &BTreeSet<String>,
    world: &mut Option<String>,
    group: &mut Option<String>,
) {
    for (i, t) in ts.iter().enumerate() {
        if let Tt::Ident { text, .. } = t {
            if COLLECTIVES.contains(&text.as_str())
                && matches!(ts.get(i + 1), Some(Tt::Group { delim: Delim::Paren, .. }))
            {
                let on_group = i >= 2
                    && ts[i - 1].is_punct(".")
                    && matches!(&ts[i - 2], Tt::Ident { text: r, .. } if group_recv.contains(r));
                let slot = if on_group { &mut *group } else { &mut *world };
                if slot.is_none() {
                    *slot = Some(text.clone());
                }
            }
        }
        if let Tt::Group { tokens: inner, .. } = t {
            classify_collectives(inner, group_recv, world, group);
        }
    }
}

/// Identifiers bound by `let x = ….split(…)` anywhere in the body,
/// including inside branch arms and loop bodies.
fn collect_split_bindings(stmts: &[syn::Stmt], out: &mut BTreeSet<String>) {
    use syn::{Expr, Stmt};
    for s in stmts {
        match s {
            Stmt::Let { names, init, else_block, .. } => {
                if let Some(e) = init {
                    if let Expr::Opaque { tokens, .. } = e {
                        let n = tokens.len();
                        let is_split = n >= 2
                            && tokens.get(n - 2).is_some_and(|t| t.is_ident("split"))
                            && matches!(
                                tokens.get(n - 1),
                                Some(Tt::Group { delim: Delim::Paren, .. })
                            );
                        if is_split {
                            out.extend(names.iter().cloned());
                        }
                    }
                    collect_expr_split_bindings(e, out);
                }
                if let Some(b) = else_block {
                    collect_split_bindings(b, out);
                }
            }
            Stmt::Expr(e) => collect_expr_split_bindings(e, out),
        }
    }
    fn collect_expr_split_bindings(e: &Expr, out: &mut BTreeSet<String>) {
        match e {
            Expr::If { then_branch, else_branch, .. } => {
                collect_split_bindings(then_branch, out);
                if let Some(e) = else_branch {
                    collect_expr_split_bindings(e, out);
                }
            }
            Expr::Match { arms, .. } => {
                for a in arms {
                    collect_split_bindings(&a.body, out);
                }
            }
            Expr::ForLoop { body, .. }
            | Expr::While { body, .. }
            | Expr::Loop { body, .. }
            | Expr::Block { stmts: body, .. } => collect_split_bindings(body, out),
            Expr::Chain { head, .. } => collect_expr_split_bindings(head, out),
            Expr::Return { .. }
            | Expr::Break { .. }
            | Expr::Continue { .. }
            | Expr::Opaque { .. } => {}
        }
    }
}

/// Every called name in a token sequence: `name(...)` and `.name(...)`,
/// recursing into all groups (closure bodies included).
pub fn collect_calls(tokens: &[Tt], out: &mut BTreeSet<String>) {
    for (i, t) in tokens.iter().enumerate() {
        if let Tt::Ident { text, .. } = t {
            if matches!(tokens.get(i + 1), Some(Tt::Group { delim: Delim::Paren, .. }))
                && !is_keyword(text)
            {
                out.insert(text.clone());
            }
        }
        if let Tt::Group { tokens: inner, .. } = t {
            collect_calls(inner, out);
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(s, "if" | "while" | "for" | "match" | "return" | "in" | "as" | "fn" | "move")
}

/// Calls appearing in return position: `return <expr>` values and the
/// body's tail expression.
fn collect_return_position_calls(stmts: &[syn::Stmt], out: &mut BTreeSet<String>) {
    for ts in return_position_tokens(stmts) {
        collect_calls(&ts, out);
    }
}

fn return_position_has_rank_call(stmts: &[syn::Stmt]) -> bool {
    return_position_tokens(stmts).iter().any(|ts| has_rank_call(ts))
}

/// Does the token sequence contain a `.rank()` or `rank()` call?
pub fn has_rank_call(tokens: &[Tt]) -> bool {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("rank")
            && matches!(tokens.get(i + 1), Some(Tt::Group { delim: Delim::Paren, .. }))
        {
            return true;
        }
        if let Tt::Group { tokens: inner, delim, .. } = t {
            if *delim != Delim::Brace && has_rank_call(inner) {
                return true;
            }
        }
    }
    false
}

/// Token runs in return position: `return <tokens>` plus the tail
/// statement of the body (and, recursively, of its branch arms).
fn return_position_tokens(stmts: &[syn::Stmt]) -> Vec<Vec<Tt>> {
    use syn::{Expr, Stmt};
    let mut out = Vec::new();
    collect_returns(stmts, &mut out);
    if let Some(Stmt::Expr(tail)) = stmts.last() {
        tail_tokens(tail, &mut out);
    }
    return out;

    fn collect_returns(stmts: &[Stmt], out: &mut Vec<Vec<Tt>>) {
        for s in stmts {
            match s {
                Stmt::Let { else_block: Some(b), .. } => collect_returns(b, out),
                Stmt::Let { .. } => {}
                Stmt::Expr(e) => collect_expr_returns(e, out),
            }
        }
    }
    fn collect_expr_returns(e: &Expr, out: &mut Vec<Vec<Tt>>) {
        match e {
            Expr::Return { value, .. } => out.push(value.clone()),
            Expr::If { then_branch, else_branch, .. } => {
                collect_returns(then_branch, out);
                if let Some(e) = else_branch {
                    collect_expr_returns(e, out);
                }
            }
            Expr::Match { arms, .. } => {
                for a in arms {
                    collect_returns(&a.body, out);
                }
            }
            Expr::ForLoop { body, .. }
            | Expr::While { body, .. }
            | Expr::Loop { body, .. }
            | Expr::Block { stmts: body, .. } => collect_returns(body, out),
            Expr::Chain { head, .. } => collect_expr_returns(head, out),
            Expr::Break { .. } | Expr::Continue { .. } | Expr::Opaque { .. } => {}
        }
    }
    fn tail_tokens(e: &Expr, out: &mut Vec<Vec<Tt>>) {
        match e {
            Expr::Opaque { tokens, .. } => out.push(tokens.clone()),
            Expr::If { then_branch, else_branch, .. } => {
                if let Some(Stmt::Expr(t)) = then_branch.last() {
                    tail_tokens(t, out);
                }
                if let Some(e) = else_branch {
                    tail_tokens(e, out);
                }
            }
            Expr::Match { arms, .. } => {
                for a in arms {
                    if let Some(Stmt::Expr(t)) = a.body.last() {
                        tail_tokens(t, out);
                    }
                }
            }
            Expr::Block { stmts, .. } => {
                if let Some(Stmt::Expr(t)) = stmts.last() {
                    tail_tokens(t, out);
                }
            }
            _ => {}
        }
    }
}
