//! # datagen — seeded synthetic workloads for clustering experiments
//!
//! The paper evaluates P-AutoClass on a synthetic dataset of tuples with
//! two real attributes (5 000 to 100 000 tuples). This crate generates
//! that workload — and richer ones for the examples — reproducibly from a
//! `u64` seed.
//!
//! * [`paper_dataset`] — the Figure 6–8 workload: 2-D Gaussian mixture.
//! * [`GaussianMixture`] — general d-dimensional mixtures with per-
//!   component means/spreads/weights, returning planted labels.
//! * [`MixedMixture`] — real + discrete attributes per class.
//! * [`satellite_image`] — a raster of spectral signatures (the Landsat
//!   use case AutoClass was famously applied to, Kanefsky et al. 1994).
//! * [`protein_sequences`] — categorical sequence data (the Hunter &
//!   States protein-classification use case).
//! * [`inject_missing`] — random missing-value injection.

#![warn(missing_docs)]

use autoclass::data::{Attribute, Column, Dataset, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A standard normal draw (Box–Muller; avoids a rand_distr dependency).
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw a component index from normalized weights.
fn draw_component(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u: f64 = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// One Gaussian component: isotropic with a per-dimension mean.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component mean, one entry per dimension.
    pub mean: Vec<f64>,
    /// Isotropic standard deviation (> 0).
    pub sigma: f64,
    /// Unnormalized mixing weight (> 0).
    pub weight: f64,
}

/// A d-dimensional Gaussian mixture generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    /// Mixture components; all means must share one dimensionality.
    pub components: Vec<Component>,
    /// Measurement error recorded in the generated schema.
    pub error: f64,
}

impl GaussianMixture {
    /// `k` well-separated components arranged on a circle in `dims`
    /// dimensions (the first two dimensions carry the circle; the rest
    /// are unit noise around 0).
    pub fn well_separated(k: usize, dims: usize, separation: f64) -> Self {
        assert!(k >= 1 && dims >= 1);
        let components = (0..k)
            .map(|c| {
                let angle = 2.0 * std::f64::consts::PI * c as f64 / k as f64;
                let mut mean = vec![0.0; dims];
                mean[0] = separation * angle.cos();
                if dims > 1 {
                    mean[1] = separation * angle.sin();
                }
                Component { mean, sigma: 1.0, weight: 1.0 }
            })
            .collect();
        GaussianMixture { components, error: 0.01 }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.components.first().map_or(0, |c| c.mean.len())
    }

    /// Generate `n` items; returns the dataset and the planted component
    /// label of each item.
    pub fn generate(&self, n: usize, seed: u64) -> (Dataset, Vec<usize>) {
        assert!(!self.components.is_empty(), "mixture needs components");
        let dims = self.dims();
        assert!(
            self.components.iter().all(|c| c.mean.len() == dims),
            "all components must share a dimensionality"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = self.components.iter().map(|c| c.weight).collect();
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); dims];
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = draw_component(&mut rng, &weights);
            labels.push(c);
            let comp = &self.components[c];
            for (d, col) in cols.iter_mut().enumerate() {
                col.push(comp.mean[d] + comp.sigma * std_normal(&mut rng));
            }
        }
        let schema = Schema::reals(dims, self.error);
        let data = Dataset::from_columns(schema, cols.into_iter().map(Column::Real).collect());
        (data, labels)
    }
}

/// The paper's synthetic workload: `n` tuples of two real attributes drawn
/// from `k` well-separated Gaussian clusters. The paper does not state its
/// cluster count; the experiments ask the system to *find* the structure
/// starting from `start_j_list`, so any well-separated k exercises the
/// same code paths. We default to 8 (matching the scaleup runs that group
/// data into 8 and 16 clusters).
pub fn paper_dataset(n: usize, seed: u64) -> Dataset {
    GaussianMixture::well_separated(8, 2, 12.0).generate(n, seed).0
}

/// Per-class spec of a mixed real/discrete generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedClass {
    /// Means of the real attributes.
    pub means: Vec<f64>,
    /// Shared standard deviation of the real attributes.
    pub sigma: f64,
    /// Per discrete attribute: level probabilities (normalized here).
    pub level_probs: Vec<Vec<f64>>,
    /// Unnormalized mixing weight.
    pub weight: f64,
}

/// Generator of datasets with both real and discrete attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedMixture {
    /// The classes; all must agree on attribute counts and level counts.
    pub classes: Vec<MixedClass>,
    /// Measurement error for the real attributes.
    pub error: f64,
}

impl MixedMixture {
    /// Generate `n` items; returns dataset and planted labels.
    pub fn generate(&self, n: usize, seed: u64) -> (Dataset, Vec<usize>) {
        assert!(!self.classes.is_empty(), "mixture needs classes");
        let first = &self.classes[0];
        let n_real = first.means.len();
        let n_disc = first.level_probs.len();
        for c in &self.classes {
            assert_eq!(c.means.len(), n_real, "real attribute count mismatch");
            assert_eq!(c.level_probs.len(), n_disc, "discrete attribute count mismatch");
            for (k, lp) in c.level_probs.iter().enumerate() {
                assert_eq!(
                    lp.len(),
                    first.level_probs[k].len(),
                    "level count mismatch at discrete attribute {k}"
                );
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();
        let mut real_cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); n_real];
        let mut disc_cols: Vec<Vec<u32>> = vec![Vec::with_capacity(n); n_disc];
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let ci = draw_component(&mut rng, &weights);
            labels.push(ci);
            let class = &self.classes[ci];
            for (d, col) in real_cols.iter_mut().enumerate() {
                col.push(class.means[d] + class.sigma * std_normal(&mut rng));
            }
            for (k, col) in disc_cols.iter_mut().enumerate() {
                col.push(draw_component(&mut rng, &class.level_probs[k]) as u32);
            }
        }
        let mut attrs: Vec<Attribute> =
            (0..n_real).map(|d| Attribute::real(format!("x{d}"), self.error)).collect();
        for (k, lp) in first.level_probs.iter().enumerate() {
            attrs.push(Attribute::discrete(format!("d{k}"), lp.len()));
        }
        let schema = Schema::new(attrs);
        let mut cols: Vec<Column> = real_cols.into_iter().map(Column::Real).collect();
        cols.extend(disc_cols.into_iter().map(Column::Discrete));
        (Dataset::from_columns(schema, cols), labels)
    }
}

/// A synthetic "satellite image": a `side × side` raster whose pixels
/// belong to spatially coherent land-cover regions, each with a distinct
/// spectral signature over `bands` channels. Returned flattened to one
/// tuple per pixel (plus the planted cover label per pixel) — the shape of
/// the Landsat classification task AutoClass took >130 hours on.
///
/// Spatial coherence comes from assigning covers by thresholded low-
/// frequency sinusoids, so regions are contiguous rather than salt-and-
/// pepper; the clustering itself only sees the spectra.
pub fn satellite_image(
    side: usize,
    bands: usize,
    covers: usize,
    seed: u64,
) -> (Dataset, Vec<usize>) {
    assert!(covers >= 2 && bands >= 1 && side >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Spectral signature per cover: distinct band means in [20, 220].
    let signatures: Vec<Vec<f64>> = (0..covers)
        .map(|c| {
            (0..bands)
                .map(|b| {
                    let t = ((c * bands + b) as f64 * 0.618_033_9).fract();
                    20.0 + 200.0 * t + rng.gen_range(-5.0..5.0)
                })
                .collect()
        })
        .collect();
    let noise = 6.0;
    let (fx, fy): (f64, f64) = (rng.gen_range(1.0..3.0), rng.gen_range(1.0..3.0));
    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(side * side); bands];
    let mut labels = Vec::with_capacity(side * side);
    for y in 0..side {
        for x in 0..side {
            let u = x as f64 / side as f64;
            let v = y as f64 / side as f64;
            // Smooth field in [0,1) → cover index: contiguous regions.
            let field = 0.5
                + 0.25 * (2.0 * std::f64::consts::PI * fx * u).sin()
                + 0.25 * (2.0 * std::f64::consts::PI * fy * v).cos();
            let cover = ((field.rem_euclid(1.0)) * covers as f64) as usize % covers;
            labels.push(cover);
            for (b, col) in cols.iter_mut().enumerate() {
                col.push(signatures[cover][b] + noise * std_normal(&mut rng));
            }
        }
    }
    let schema =
        Schema::new((0..bands).map(|b| Attribute::real(format!("band{b}"), 1.0)).collect());
    let data = Dataset::from_columns(schema, cols.into_iter().map(Column::Real).collect());
    (data, labels)
}

/// Synthetic "protein-like" sequences: `n` items, each a sequence of
/// `positions` categorical attributes over an `alphabet`-letter alphabet,
/// generated from `families` position-specific level distributions (the
/// Hunter & States Bayesian protein-classification setting).
pub fn protein_sequences(
    n: usize,
    positions: usize,
    alphabet: usize,
    families: usize,
    seed: u64,
) -> (Dataset, Vec<usize>) {
    assert!(alphabet >= 2 && families >= 1 && positions >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Each family strongly prefers one letter per position.
    let prefs: Vec<Vec<usize>> = (0..families)
        .map(|_| (0..positions).map(|_| rng.gen_range(0..alphabet)).collect())
        .collect();
    let mut cols: Vec<Vec<u32>> = vec![Vec::with_capacity(n); positions];
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let fam = rng.gen_range(0..families);
        labels.push(fam);
        for (p, col) in cols.iter_mut().enumerate() {
            // 70 % the family's preferred letter, otherwise uniform.
            let letter = if rng.gen_bool(0.7) { prefs[fam][p] } else { rng.gen_range(0..alphabet) };
            col.push(letter as u32);
        }
    }
    let schema = Schema::new(
        (0..positions).map(|p| Attribute::discrete(format!("pos{p}"), alphabet)).collect(),
    );
    let data = Dataset::from_columns(schema, cols.into_iter().map(Column::Discrete).collect());
    (data, labels)
}

/// Two-dimensional Gaussian blobs with a *common within-class
/// correlation* ρ — the workload that separates AutoClass's independent
/// (`single_normal_cn`) and correlated (`multi_normal_cn`) model
/// structures. `k` components on a circle of radius `separation`, unit
/// marginal variances, correlation `rho` in (−1, 1).
pub fn correlated_blobs(
    k: usize,
    separation: f64,
    rho: f64,
    n: usize,
    seed: u64,
) -> (Dataset, Vec<usize>) {
    assert!(rho.abs() < 1.0, "correlation must be in (-1, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    // Cholesky of [[1, ρ], [ρ, 1]]: L = [[1, 0], [ρ, sqrt(1-ρ²)]].
    let l21 = rho;
    let l22 = (1.0 - rho * rho).sqrt();
    let mut c0 = Vec::with_capacity(n);
    let mut c1 = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.gen_range(0..k);
        labels.push(c);
        let angle = 2.0 * std::f64::consts::PI * c as f64 / k as f64;
        let (mx, my) = (separation * angle.cos(), separation * angle.sin());
        let z1 = std_normal(&mut rng);
        let z2 = std_normal(&mut rng);
        c0.push(mx + z1);
        c1.push(my + l21 * z1 + l22 * z2);
    }
    let schema = Schema::reals(2, 0.01);
    let data = Dataset::from_columns(schema, vec![Column::Real(c0), Column::Real(c1)]);
    (data, labels)
}

/// A mixture of log-normal components over strictly positive attributes
/// (e.g. incomes, masses, durations) — exercises AutoClass's
/// `single_normal_ln` term. Component `c` has per-dimension medians
/// `medians[c]` and a shared log-scale sigma.
#[derive(Debug, Clone, PartialEq)]
pub struct LogNormalMixture {
    /// Per-component, per-dimension medians (> 0).
    pub medians: Vec<Vec<f64>>,
    /// Standard deviation on the ln scale (shared).
    pub ln_sigma: f64,
    /// Relative measurement error recorded in the schema.
    pub error: f64,
}

impl LogNormalMixture {
    /// Generate `n` items; returns dataset (PositiveReal attributes) and
    /// planted labels.
    pub fn generate(&self, n: usize, seed: u64) -> (Dataset, Vec<usize>) {
        assert!(!self.medians.is_empty(), "mixture needs components");
        let dims = self.medians[0].len();
        assert!(
            self.medians.iter().all(|m| m.len() == dims && m.iter().all(|&x| x > 0.0)),
            "medians must be positive and share a dimensionality"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let k = self.medians.len();
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n); dims];
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = rng.gen_range(0..k);
            labels.push(c);
            for (d, col) in cols.iter_mut().enumerate() {
                let ln_x = self.medians[c][d].ln() + self.ln_sigma * std_normal(&mut rng);
                col.push(ln_x.exp());
            }
        }
        let schema = Schema::new(
            (0..dims).map(|d| Attribute::positive_real(format!("m{d}"), self.error)).collect(),
        );
        let data = Dataset::from_columns(schema, cols.into_iter().map(Column::Real).collect());
        (data, labels)
    }
}

/// Replace a fraction of values with missing, uniformly at random, and
/// return a new dataset. `fraction` in [0, 1].
pub fn inject_missing(data: &Dataset, fraction: f64, seed: u64) -> Dataset {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let view = data.full_view();
    let schema = data.schema().clone();
    let cols =
        schema
            .attributes
            .iter()
            .enumerate()
            .map(|(c, attr)| match attr.kind {
                autoclass::data::AttributeKind::Real { .. }
                | autoclass::data::AttributeKind::PositiveReal { .. } => Column::Real(
                    view.real_column(c)
                        .iter()
                        .map(|&x| if rng.gen_bool(fraction) { f64::NAN } else { x })
                        .collect(),
                ),
                autoclass::data::AttributeKind::Discrete { .. } => Column::Discrete(
                    view.discrete_column(c)
                        .iter()
                        .map(|&l| {
                            if rng.gen_bool(fraction) {
                                autoclass::data::MISSING_DISCRETE
                            } else {
                                l
                            }
                        })
                        .collect(),
                ),
            })
            .collect();
    Dataset::from_columns(schema, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dataset_shape() {
        let d = paper_dataset(500, 1);
        assert_eq!(d.len(), 500);
        assert_eq!(d.schema().len(), 2);
        assert!(d.schema().attributes.iter().all(|a| a.kind.is_real()));
    }

    #[test]
    fn generation_is_reproducible() {
        let a = paper_dataset(200, 7);
        let b = paper_dataset(200, 7);
        assert_eq!(a, b);
        let c = paper_dataset(200, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_cover_all_components() {
        let gm = GaussianMixture::well_separated(5, 3, 20.0);
        let (d, labels) = gm.generate(1000, 3);
        assert_eq!(d.len(), 1000);
        assert_eq!(d.schema().len(), 3);
        for c in 0..5 {
            assert!(labels.contains(&c), "component {c} unused");
        }
    }

    #[test]
    fn separated_clusters_are_actually_separated() {
        let gm = GaussianMixture::well_separated(3, 2, 30.0);
        let (d, labels) = gm.generate(600, 5);
        let v = d.full_view();
        // Mean of each planted cluster on dim 0 should be close to its
        // component mean (within a few standard errors).
        for c in 0..3 {
            let xs: Vec<f64> = v
                .real_column(0)
                .iter()
                .zip(&labels)
                .filter(|&(_, &l)| l == c)
                .map(|(&x, _)| x)
                .collect();
            let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
            assert!((mean - gm.components[c].mean[0]).abs() < 0.5, "component {c}: {mean}");
        }
    }

    #[test]
    fn mixed_mixture_generates_both_kinds() {
        let mm = MixedMixture {
            classes: vec![
                MixedClass {
                    means: vec![-5.0],
                    sigma: 1.0,
                    level_probs: vec![vec![0.9, 0.1]],
                    weight: 1.0,
                },
                MixedClass {
                    means: vec![5.0],
                    sigma: 1.0,
                    level_probs: vec![vec![0.1, 0.9]],
                    weight: 1.0,
                },
            ],
            error: 0.01,
        };
        let (d, labels) = mm.generate(400, 9);
        assert_eq!(d.schema().len(), 2);
        let v = d.full_view();
        // Class-0 items should mostly carry level 0.
        let mut hits = 0;
        let mut total = 0;
        for (i, &l) in labels.iter().enumerate() {
            if l == 0 {
                total += 1;
                if v.discrete_column(1)[i] == 0 {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 > 0.7 * total as f64, "{hits}/{total}");
    }

    #[test]
    fn satellite_image_has_coherent_regions() {
        let side = 64;
        let (d, labels) = satellite_image(side, 4, 4, 11);
        assert_eq!(d.len(), side * side);
        assert_eq!(d.schema().len(), 4);
        // Spatial coherence: most horizontal neighbors share a cover
        // (far more than the 1/covers = 25 % a random scatter would give).
        let mut same = 0;
        let mut total = 0;
        for y in 0..side {
            for x in 0..side - 1 {
                total += 1;
                if labels[y * side + x] == labels[y * side + x + 1] {
                    same += 1;
                }
            }
        }
        assert!(same as f64 > 0.75 * total as f64, "{same}/{total}");
    }

    #[test]
    fn protein_sequences_are_family_biased() {
        let (d, labels) = protein_sequences(300, 10, 4, 3, 13);
        assert_eq!(d.len(), 300);
        assert_eq!(d.schema().len(), 10);
        assert!(labels.iter().all(|&f| f < 3));
        // Each column stays within the alphabet.
        let v = d.full_view();
        for p in 0..10 {
            assert!(v.discrete_column(p).iter().all(|&l| l < 4));
        }
    }

    #[test]
    fn lognormal_mixture_is_positive_and_labeled() {
        let lm = LogNormalMixture {
            medians: vec![vec![1.0, 10.0], vec![100.0, 0.5]],
            ln_sigma: 0.3,
            error: 0.05,
        };
        let (d, labels) = lm.generate(500, 21);
        assert_eq!(d.len(), 500);
        assert_eq!(d.schema().len(), 2);
        let v = d.full_view();
        for c in 0..2 {
            assert!(v.real_column(c).iter().all(|&x| x > 0.0));
        }
        assert!(labels.contains(&0) && labels.contains(&1));
        // Median of component-0 items on dim 0 should be near 1.0 (ln ≈ 0).
        let mut xs: Vec<f64> = v
            .real_column(0)
            .iter()
            .zip(&labels)
            .filter(|&(_, &l)| l == 0)
            .map(|(&x, _)| x)
            .collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!((median.ln()).abs() < 0.2, "median {median}");
    }

    #[test]
    fn inject_missing_hits_roughly_the_fraction() {
        let d = paper_dataset(2000, 3);
        let dm = inject_missing(&d, 0.25, 4);
        let v = dm.full_view();
        let missing = v.real_column(0).iter().filter(|x| x.is_nan()).count();
        let frac = missing as f64 / 2000.0;
        assert!((frac - 0.25).abs() < 0.05, "{frac}");
        // Zero fraction is the identity.
        let d0 = inject_missing(&d, 0.0, 4);
        assert_eq!(d0, d);
    }
}
