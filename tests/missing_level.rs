//! Tests of AutoClass's informative-missingness option: modeling
//! "missing" as an explicit multinomial level, so a value's *absence*
//! becomes evidence about class membership.

use autoclass::data::Attribute;
use autoclass::data::{Column, Dataset, GlobalStats, Schema, Value, MISSING_DISCRETE};
use autoclass::predict::posterior;
use autoclass::search::{search_with_model, SearchConfig};
use autoclass::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two classes separable *only* by whether the discrete attribute is
/// recorded: class 0 answers the survey question 95 % of the time, class
/// 1 only 10 % of the time. The real attribute gives mild separation so
/// the classes are findable, and the missingness pattern carries the
/// rest of the signal.
fn survey_data(n: usize, seed: u64) -> (Dataset, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ds = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = usize::from(rng.gen_bool(0.5));
        labels.push(class);
        let center = if class == 0 { -1.5 } else { 1.5 };
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        xs.push(center + z);
        let answers = if class == 0 { rng.gen_bool(0.95) } else { rng.gen_bool(0.10) };
        if answers {
            // The answer itself is uninformative (uniform over 2 levels).
            ds.push(u32::from(rng.gen_bool(0.5)));
        } else {
            ds.push(MISSING_DISCRETE);
        }
    }
    let schema = Schema::new(vec![Attribute::real("x", 0.05), Attribute::discrete("q", 2)]);
    let data = Dataset::from_columns(schema, vec![Column::Real(xs), Column::Discrete(ds)]);
    (data, labels)
}

fn fit(data: &Dataset, missing_level: bool, seed: u64) -> (Model, autoclass::Classification) {
    let _ = seed; // search seeding is fixed; kept for call-site clarity
    let stats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &stats);
    let model = if missing_level { model.with_missing_levels(&[1]) } else { model };
    let config = SearchConfig {
        start_j_list: vec![2],
        tries_per_j: 3,
        max_cycles: 60,
        ..SearchConfig::default()
    };
    let r = search_with_model(&data.full_view(), &model, &config);
    (model, r.best)
}

#[test]
fn missing_level_changes_term_shapes() {
    let (data, _) = survey_data(400, 1);
    let stats = GlobalStats::compute(&data.full_view());
    let base = Model::new(data.schema().clone(), &stats);
    let with = base.clone().with_missing_levels(&[1]);
    // One extra statistics slot and one extra parameter slot.
    assert_eq!(with.groups[1].prior.stat_len(), base.groups[1].prior.stat_len() + 1);
    assert_eq!(with.class_param_len(), base.class_param_len() + 1);
}

#[test]
fn missingness_becomes_evidence() {
    let (data, labels) = survey_data(2_000, 13);
    let (model, best) = fit(&data, true, 7);
    assert_eq!(best.n_classes(), 2);

    // A row that is *only* "didn't answer" (x missing too) should lean
    // toward the low-response class far more than the mixture prior.
    let p_missing = posterior(&model, &best.classes, &[Value::Missing, Value::Missing]);
    let p_answered = posterior(&model, &best.classes, &[Value::Missing, Value::Discrete(0)]);
    // The two posteriors must pull in opposite directions.
    let lean_missing = p_missing[0].max(p_missing[1]);
    assert!(lean_missing > 0.7, "missingness alone should be informative: {p_missing:?}");
    let argmax = |p: &[f64]| usize::from(p[1] > p[0]);
    assert_ne!(
        argmax(&p_missing),
        argmax(&p_answered),
        "answering vs not answering should indicate different classes: \
         {p_missing:?} vs {p_answered:?}"
    );

    // Accuracy on the planted labels should clearly beat chance and the
    // missing-at-random model (which can only use x).
    let view = data.full_view();
    let classify_all = |model: &Model, best: &autoclass::Classification| -> f64 {
        let mut agree = [[0usize; 2]; 2];
        for i in 0..data.len() {
            let d = view.discrete_column(1)[i];
            let row = vec![
                Value::Real(view.real_column(0)[i]),
                if d == MISSING_DISCRETE { Value::Missing } else { Value::Discrete(d) },
            ];
            let p = posterior(model, &best.classes, &row);
            agree[usize::from(p[1] > p[0])][labels[i]] += 1;
        }
        let diag = agree[0][0] + agree[1][1];
        let anti = agree[0][1] + agree[1][0];
        diag.max(anti) as f64 / data.len() as f64
    };
    let acc_with = classify_all(&model, &best);
    let (model_mar, best_mar) = fit(&data, false, 7);
    let acc_without = classify_all(&model_mar, &best_mar);
    assert!(acc_with > 0.85, "informative-missingness accuracy {acc_with}");
    assert!(
        acc_with > acc_without + 0.03,
        "modeling missingness should help: {acc_with} vs {acc_without}"
    );
}

#[test]
fn parallel_run_supports_missing_levels_via_model() {
    // The missing-level model flows through the same kernels, so the
    // partitioned E/M steps must still merge to the whole-data result.
    use autoclass::data::block_partition;
    use autoclass::model::{init_classes, update_wts, StatLayout, SuffStats, WtsMatrix};
    let (data, _) = survey_data(600, 11);
    let stats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &stats).with_missing_levels(&[1]);
    let classes = init_classes(&model, &data.full_view(), 2, 3);

    let mut wts = WtsMatrix::new(0, 0);
    update_wts(&model, &data.full_view(), &classes, &mut wts);
    let mut whole = SuffStats::zeros(StatLayout::new(&model, 2));
    whole.accumulate(&model, &data.full_view(), &wts);

    let mut parts = SuffStats::zeros(StatLayout::new(&model, 2));
    for r in block_partition(data.len(), 4) {
        let view = data.view(r.start, r.end);
        let mut w = WtsMatrix::new(0, 0);
        update_wts(&model, &view, &classes, &mut w);
        parts.accumulate(&model, &view, &w);
    }
    for (a, b) in parts.data.iter().zip(&whole.data) {
        assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
    }
    // The missing slot actually accumulated weight.
    let missing_slot_total: f64 =
        (0..2).map(|c| whole.attr_stats(c, 1).last().copied().unwrap()).sum();
    assert!(missing_slot_total > 100.0, "{missing_slot_total}");
}

#[test]
#[should_panic(expected = "is not discrete")]
fn missing_level_rejects_real_attributes() {
    let (data, _) = survey_data(50, 1);
    let stats = GlobalStats::compute(&data.full_view());
    let _ = Model::new(data.schema().clone(), &stats).with_missing_levels(&[0]);
}
