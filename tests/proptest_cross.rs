//! Cross-crate property tests: invariants that must hold for arbitrary
//! datasets, partitionings, and machine sizes.

use autoclass::data::{block_partition, GlobalStats};
use autoclass::model::{
    init_classes, stats_to_classes, update_wts, Model, StatLayout, SuffStats, WtsMatrix,
};
use proptest::prelude::*;

/// Strategy: a small random Gaussian-mixture dataset spec.
fn dataset_strategy() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    // (n, k components, dims, seed)
    (20usize..200, 1usize..5, 1usize..4, 0u64..10_000)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn estep_weights_always_normalized((n, k, dims, seed) in dataset_strategy(), j in 1usize..6) {
        let (data, _) = datagen::GaussianMixture::well_separated(k, dims, 8.0)
            .generate(n, seed);
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &stats);
        let classes = init_classes(&model, &data.full_view(), j, seed ^ 1);
        let mut wts = WtsMatrix::new(0, 0);
        let out = update_wts(&model, &data.full_view(), &classes, &mut wts);
        // Every item's membership sums to 1.
        for i in 0..n {
            let s: f64 = wts.item_weights(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "item {i}: {s}");
        }
        // Class weight sums add to N.
        let total: f64 = out.class_weight_sums.iter().sum();
        prop_assert!((total - n as f64).abs() < 1e-6);
        // Jensen: complete-data log likelihood ≤ incomplete.
        prop_assert!(out.complete_ll <= out.log_likelihood + 1e-9);
    }

    #[test]
    fn partitioned_estep_and_mstep_match_whole(
        (n, k, dims, seed) in dataset_strategy(),
        p in 1usize..8,
        j in 1usize..5,
    ) {
        let (data, _) = datagen::GaussianMixture::well_separated(k, dims, 8.0)
            .generate(n, seed);
        let gstats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &gstats);
        let classes = init_classes(&model, &data.full_view(), j, seed ^ 2);

        // Whole-dataset reference.
        let mut wts = WtsMatrix::new(0, 0);
        let whole_e = update_wts(&model, &data.full_view(), &classes, &mut wts);
        let mut whole_s = SuffStats::zeros(StatLayout::new(&model, j));
        whole_s.accumulate(&model, &data.full_view(), &wts);

        // Partitioned accumulation (what the Allreduce computes).
        let mut part_s = SuffStats::zeros(StatLayout::new(&model, j));
        let mut part_ll = 0.0;
        for r in block_partition(n, p) {
            let view = data.view(r.start, r.end);
            let mut w = WtsMatrix::new(0, 0);
            let e = update_wts(&model, &view, &classes, &mut w);
            part_ll += e.log_likelihood;
            part_s.accumulate(&model, &view, &w);
        }
        prop_assert!((part_ll - whole_e.log_likelihood).abs()
            < 1e-9 * whole_e.log_likelihood.abs().max(1.0));
        for (a, b) in part_s.data.iter().zip(&whole_s.data) {
            prop_assert!((a - b).abs() < 1e-8 * b.abs().max(1.0), "{a} vs {b}");
        }
        // And the derived parameters agree too.
        let (ca, _) = stats_to_classes(&model, &part_s);
        let (cb, _) = stats_to_classes(&model, &whole_s);
        for (x, y) in ca.iter().zip(&cb) {
            prop_assert!((x.weight - y.weight).abs() < 1e-8 * y.weight.abs().max(1.0));
            prop_assert!((x.pi - y.pi).abs() < 1e-12);
        }
    }

    #[test]
    fn map_proportions_form_a_distribution(
        weights in prop::collection::vec(0.0f64..1000.0, 1..20),
    ) {
        let n: f64 = weights.iter().sum();
        let j = weights.len();
        let pis: Vec<f64> = weights.iter().map(|&w| Model::map_pi(w, n, j)).collect();
        let total: f64 = pis.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "{total}");
        prop_assert!(pis.iter().all(|&p| p > 0.0 && p <= 1.0));
    }

    #[test]
    fn block_partition_is_exact_and_balanced(n in 0usize..10_000, p in 1usize..64) {
        let parts = block_partition(n, p);
        prop_assert_eq!(parts.len(), p);
        let mut next = 0;
        for r in &parts {
            prop_assert_eq!(r.start, next);
            next = r.end;
        }
        prop_assert_eq!(next, n);
        let sizes: Vec<usize> = parts.iter().map(|r| r.len()).collect();
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn em_log_likelihood_is_monotone(
        (n, k, dims, seed) in dataset_strategy(),
        j in 1usize..4,
    ) {
        let (data, _) = datagen::GaussianMixture::well_separated(k.max(2), dims, 10.0)
            .generate(n.max(50), seed);
        let gstats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &gstats);
        let mut classes = init_classes(&model, &data.full_view(), j, seed ^ 3);
        let mut wts = WtsMatrix::new(0, 0);
        let mut prev = f64::NEG_INFINITY;
        for cycle in 0..8 {
            let e = update_wts(&model, &data.full_view(), &classes, &mut wts);
            // MAP-EM is monotone in the log *posterior*, not the raw
            // likelihood: the prior (an O(1) term against an O(n)
            // likelihood) can buy a bounded dip, and the sigma floor
            // weakens the exact-argmax property further. Allow a small
            // absolute slack — real monotonicity bugs diverge by many
            // nats, which this still catches.
            prop_assert!(
                e.log_likelihood >= prev - 0.5 - 1e-4 * prev.abs(),
                "cycle {cycle}: {prev} -> {}",
                e.log_likelihood
            );
            prev = e.log_likelihood;
            let mut s = SuffStats::zeros(StatLayout::new(&model, j));
            s.accumulate(&model, &data.full_view(), &wts);
            classes = stats_to_classes(&model, &s).0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn results_file_round_trips_any_search(
        n in 40usize..150,
        k in 1usize..4,
        seed in 0u64..5_000,
    ) {
        // Whatever a search produces must survive save → load bit-exactly.
        use autoclass::search::{search, SearchConfig};
        use autoclass::store::{read_results, write_results};
        let (data, _) = datagen::GaussianMixture::well_separated(k, 2, 9.0)
            .generate(n, seed);
        let r = search(
            &data.full_view(),
            &SearchConfig { max_cycles: 15, ..SearchConfig::quick(vec![2], seed) },
        );
        let mut buf = Vec::new();
        write_results(&mut buf, &r.all, &[]).unwrap();
        let (back, _) = read_results(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), r.all.len());
        for (a, b) in back.iter().zip(&r.all) {
            prop_assert_eq!(&a.classes, &b.classes);
            prop_assert_eq!(a.approx, b.approx);
        }
    }

    #[test]
    fn posterior_rows_always_normalize(
        n in 30usize..120,
        seed in 0u64..5_000,
        x in -50.0f64..50.0,
        y in -50.0f64..50.0,
    ) {
        use autoclass::data::{GlobalStats, Value};
        use autoclass::predict::posterior;
        use autoclass::search::{search, SearchConfig};
        let (data, _) = datagen::GaussianMixture::well_separated(2, 2, 10.0)
            .generate(n, seed);
        let r = search(
            &data.full_view(),
            &SearchConfig { max_cycles: 10, ..SearchConfig::quick(vec![3], seed) },
        );
        let stats = GlobalStats::compute(&data.full_view());
        let model = Model::new(data.schema().clone(), &stats);
        for row in [
            vec![Value::Real(x), Value::Real(y)],
            vec![Value::Missing, Value::Real(y)],
            vec![Value::Missing, Value::Missing],
        ] {
            let p = posterior(&model, &r.best.classes, &row);
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "{row:?}: {sum}");
            prop_assert!(p.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
        }
    }
}
