//! Cross-crate end-to-end tests: the full user workflow from data on disk
//! through parallel clustering to reports and prediction.

use autoclass::data::{read_csv, write_csv, GlobalStats, Value};
use autoclass::predict::{classify, posterior};
use autoclass::report::report;
use autoclass::search::{search, SearchConfig};
use autoclass::Model;
use pautoclass::{run_search, ParallelConfig};

#[test]
fn csv_to_clusters_to_report() {
    // Generate → write CSV → read back → cluster → report → predict.
    let (data, _) = datagen::GaussianMixture::well_separated(2, 2, 14.0).generate(800, 3);
    let mut buf = Vec::new();
    write_csv(&data, &mut buf).unwrap();
    let data2 = read_csv(data.schema().clone(), buf.as_slice()).unwrap();
    assert_eq!(data2.len(), data.len());

    let result = search(&data2.full_view(), &SearchConfig::quick(vec![1, 2, 4], 5));
    assert_eq!(result.best.n_classes(), 2);

    let stats = GlobalStats::compute(&data2.full_view());
    let model = Model::new(data2.schema().clone(), &stats);
    let rep = report(&model, &stats, &result.best);
    assert_eq!(rep.classes.len(), 2);
    assert!(rep.to_string().contains("CLASS 1"));

    // Predict a point near the first planted center (at separation 14 on
    // the circle, component 0 sits at (14, 0)).
    let (cls_a, pa) =
        classify(&model, &result.best.classes, &[Value::Real(14.0), Value::Real(0.0)]);
    let (cls_b, pb) =
        classify(&model, &result.best.classes, &[Value::Real(-14.0), Value::Real(0.0)]);
    assert_ne!(cls_a, cls_b);
    assert!(pa > 0.99 && pb > 0.99);
}

#[test]
fn parallel_pipeline_with_missing_data() {
    // The whole parallel pipeline must tolerate missing values.
    let (data, _) = datagen::GaussianMixture::well_separated(3, 2, 15.0).generate(1_500, 9);
    let data = datagen::inject_missing(&data, 0.1, 2);
    let config = ParallelConfig {
        search: SearchConfig::quick(vec![2, 3, 4], 17),
        ..ParallelConfig::default()
    };
    let out = run_search(&data, &mpsim::presets::meiko_cs2(7), &config).unwrap();
    assert_eq!(out.best.n_classes(), 3, "3 planted clusters despite 10% missing");
    // Posterior for an all-missing row must be the mixture proportions.
    let stats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &stats);
    let p = posterior(&model, &out.best.classes, &[Value::Missing, Value::Missing]);
    let pi_sum: f64 = out.best.classes.iter().map(|c| c.pi).sum();
    for (post, class) in p.iter().zip(&out.best.classes) {
        assert!((post - class.pi / pi_sum).abs() < 1e-9);
    }
}

#[test]
fn membership_probabilities_reflect_separation() {
    // Paper §2: well-separated classes → memberships near 0.99;
    // overlapping classes → memberships near 0.5.
    let far = datagen::GaussianMixture::well_separated(2, 1, 20.0);
    let (far_data, _) = far.generate(600, 4);
    // Several tries: a single random start can land both seeds in one
    // blob and converge to the symmetric saddle — the multiple-restart
    // search is AutoClass's own answer to that.
    let config = SearchConfig { tries_per_j: 4, ..SearchConfig::quick(vec![2], 7) };
    let result = search(&far_data.full_view(), &config);
    let stats = GlobalStats::compute(&far_data.full_view());
    let model = Model::new(far_data.schema().clone(), &stats);
    let view = far_data.full_view();
    let mut confident = 0;
    for i in 0..far_data.len() {
        let p = posterior(&model, &result.best.classes, &[Value::Real(view.real_column(0)[i])]);
        if p.iter().any(|&x| x > 0.99) {
            confident += 1;
        }
    }
    assert!(confident as f64 > 0.95 * far_data.len() as f64);

    // Heavily overlapping: two components at ±0.5 with sigma 1.
    let mut overlap = datagen::GaussianMixture::well_separated(2, 1, 0.5);
    overlap.components[0].sigma = 1.0;
    overlap.components[1].sigma = 1.0;
    let (ov_data, _) = overlap.generate(600, 4);
    let result = search(&ov_data.full_view(), &SearchConfig::quick(vec![2], 7));
    if result.best.n_classes() == 2 {
        let stats = GlobalStats::compute(&ov_data.full_view());
        let model = Model::new(ov_data.schema().clone(), &stats);
        let p = posterior(&model, &result.best.classes, &[Value::Real(0.0)]);
        // A point between overlapping classes cannot be confidently
        // assigned.
        assert!(p.iter().all(|&x| x < 0.95), "{p:?}");
    }
}

#[test]
fn rank_failure_is_reported_not_hung() {
    // Failure injection through the whole stack: a panicking rank inside
    // a P-AutoClass-shaped SPMD body must surface as an error.
    let spec = mpsim::presets::zero_cost(4);
    let r = mpsim::run_spmd(
        &spec,
        &mpsim::SimOptions {
            recv_timeout: std::time::Duration::from_millis(300),
            ..Default::default()
        },
        |comm| {
            if comm.rank() == 2 {
                panic!("injected fault");
            }
            let mut buf = vec![1.0; 8];
            comm.allreduce_f64s(&mut buf, mpsim::ReduceOp::Sum);
        },
    );
    match r {
        Err(mpsim::SimError::RankPanicked { rank, message }) => {
            assert_eq!(rank, 2);
            assert!(message.contains("injected fault"));
        }
        other => panic!("expected RankPanicked, got {other:?}"),
    }
}

#[test]
fn kmeans_and_autoclass_agree_on_separated_blobs() {
    // Baseline sanity: on trivially separable data, both algorithms find
    // the same structure.
    let (data, labels) = datagen::GaussianMixture::well_separated(4, 2, 25.0).generate(2_000, 6);
    let ac = search(&data.full_view(), &SearchConfig::quick(vec![4], 3));
    assert_eq!(ac.best.n_classes(), 4);

    let (km, assign) = kmeans::kmeans_seq(
        &data.full_view(),
        &kmeans::KMeansConfig { k: 4, seed: 3, ..Default::default() },
    );
    assert!(km.converged);
    // Each k-means cluster should be dominated by one planted label.
    for c in 0..4 {
        let members: Vec<usize> =
            assign.iter().enumerate().filter(|&(_, &a)| a == c).map(|(i, _)| labels[i]).collect();
        if members.is_empty() {
            continue;
        }
        let mut counts = [0usize; 4];
        for &l in &members {
            counts[l] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max as f64 > 0.95 * members.len() as f64);
    }
}

#[test]
fn lognormal_attributes_cluster_end_to_end() {
    // PositiveReal attributes flow through the LogNormal term: priors on
    // the ln scale, Jacobian in the density, same Allreduce machinery.
    let lm = datagen::LogNormalMixture {
        medians: vec![vec![1.0, 50.0], vec![200.0, 2.0]],
        ln_sigma: 0.25,
        error: 0.05,
    };
    let (data, truth) = lm.generate(1_200, 31);
    let config =
        ParallelConfig { search: SearchConfig::quick(vec![2, 4], 9), ..ParallelConfig::default() };
    let out = run_search(&data, &mpsim::presets::meiko_cs2(5), &config).unwrap();
    assert_eq!(out.best.n_classes(), 2, "two planted log-normal components");

    // Posterior assignment should track the planted labels (up to class
    // relabeling).
    let stats = GlobalStats::compute(&data.full_view());
    let model = Model::new(data.schema().clone(), &stats);
    let view = data.full_view();
    let mut agree = [[0usize; 2]; 2];
    for i in 0..data.len() {
        let row = vec![Value::Real(view.real_column(0)[i]), Value::Real(view.real_column(1)[i])];
        let (cls, _) = classify(&model, &out.best.classes, &row);
        agree[cls.min(1)][truth[i]] += 1;
    }
    let diag = agree[0][0] + agree[1][1];
    let anti = agree[0][1] + agree[1][0];
    let best = diag.max(anti);
    assert!(best as f64 > 0.97 * data.len() as f64, "agreement {best}/{}", data.len());
}
