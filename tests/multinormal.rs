//! Tests of the correlated-normal (`multi_normal_cn`) model term and the
//! model-level structure search built on it.

use autoclass::data::{GlobalStats, Value};
use autoclass::model::{
    init_classes, stats_to_classes, update_wts, Model, StatLayout, SuffStats, TermParams,
    TermPrior, WtsMatrix,
};
use autoclass::search::{compare_structures, search_with_model, SearchConfig};

fn correlated_model(data: &autoclass::Dataset) -> Model {
    let stats = GlobalStats::compute(&data.full_view());
    Model::with_correlated(data.schema().clone(), &stats, &[vec![0, 1]])
}

#[test]
fn correlated_model_has_one_group() {
    let (data, _) = datagen::correlated_blobs(2, 10.0, 0.8, 200, 1);
    let model = correlated_model(&data);
    assert_eq!(model.n_groups(), 1);
    assert_eq!(model.n_attrs(), 2);
    match &model.groups[0].prior {
        TermPrior::MultiNormal { dim, scatter0, .. } => {
            assert_eq!(*dim, 2);
            // Prior scatter is diagonal (no prior belief in correlation).
            assert_eq!(scatter0[1], 0.0);
            assert!(scatter0[0] > 0.0 && scatter0[3] > 0.0);
        }
        other => panic!("expected MultiNormal, got {other:?}"),
    }
    // 1 weight + (2 mean + 4 chol) parameters.
    assert_eq!(model.class_param_len(), 7);
}

#[test]
fn mvn_map_recovers_planted_correlation() {
    // One class; the MAP covariance must pick up ρ ≈ 0.8.
    let (data, _) = datagen::correlated_blobs(1, 0.0, 0.8, 4_000, 3);
    let model = correlated_model(&data);
    let classes = vec![autoclass::ClassParams::new(
        data.len() as f64,
        1.0,
        vec![TermParams::multi_normal(vec![0.0, 0.0], &[2.0, 0.0, 0.0, 2.0], 0.0)],
    )];
    let mut wts = WtsMatrix::new(0, 0);
    update_wts(&model, &data.full_view(), &classes, &mut wts);
    let mut stats = SuffStats::zeros(StatLayout::new(&model, 1));
    stats.accumulate(&model, &data.full_view(), &wts);
    let (new_classes, _) = stats_to_classes(&model, &stats);
    match &new_classes[0].terms[0] {
        TermParams::MultiNormal { chol, .. } => {
            // Σ = L·Lᵀ; ρ = Σ01 / sqrt(Σ00 Σ11).
            let s00 = chol[0] * chol[0];
            let s01 = chol[0] * chol[2];
            let s11 = chol[2] * chol[2] + chol[3] * chol[3];
            let rho = s01 / (s00 * s11).sqrt();
            assert!((rho - 0.8).abs() < 0.05, "recovered rho = {rho}");
            assert!((s00 - 1.0).abs() < 0.15, "marginal var {s00}");
        }
        other => panic!("expected MultiNormal, got {other:?}"),
    }
}

#[test]
fn mvn_diagonal_matches_independent_normals() {
    // With a diagonal covariance the joint density must equal the product
    // of the marginals.
    let mvn = TermParams::multi_normal(vec![1.0, -2.0], &[4.0, 0.0, 0.0, 0.25], 0.0);
    let n1 = TermParams::normal(1.0, 2.0);
    let n2 = TermParams::normal(-2.0, 0.5);
    for (x, y) in [(0.0, 0.0), (1.0, -2.0), (3.5, -1.0), (-2.0, -3.0)] {
        let joint = mvn.log_prob_vec(&[x, y]);
        let product = n1.log_prob_real(x) + n2.log_prob_real(y);
        assert!((joint - product).abs() < 1e-12, "({x},{y}): {joint} vs {product}");
    }
}

#[test]
fn mvn_missing_component_skips_block() {
    let mvn = TermParams::multi_normal(vec![0.0, 0.0], &[1.0, 0.0, 0.0, 1.0], 0.0);
    assert_eq!(mvn.log_prob_vec(&[f64::NAN, 1.0]), 0.0);
    assert_eq!(mvn.log_prob_vec(&[1.0, f64::NAN]), 0.0);
}

#[test]
fn em_with_mvn_recovers_correlated_clusters() {
    let (data, _) = datagen::correlated_blobs(3, 12.0, 0.7, 1_500, 7);
    let model = correlated_model(&data);
    let config = SearchConfig {
        start_j_list: vec![2, 3, 4],
        tries_per_j: 2,
        max_cycles: 60,
        ..SearchConfig::default()
    };
    let result = search_with_model(&data.full_view(), &model, &config);
    assert_eq!(result.best.n_classes(), 3, "3 planted correlated clusters");
    assert!(result.best.approx.cs_score.is_finite());
}

#[test]
fn structure_search_prefers_correlated_on_correlated_data() {
    let (data, _) = datagen::correlated_blobs(2, 10.0, 0.85, 2_000, 11);
    // Several restarts: a single MVN try can converge to a poor local
    // optimum and misrepresent the structure's best achievable score.
    let config = SearchConfig { tries_per_j: 3, ..SearchConfig::quick(vec![2], 5) };
    let ranked = compare_structures(&data.full_view(), &[vec![], vec![vec![0, 1]]], &config);
    assert_eq!(
        ranked[0].0,
        vec![vec![0, 1]],
        "correlated structure should win on ρ=0.85 data: scores {:?}",
        ranked.iter().map(|(s, r)| (s.clone(), r.best.score())).collect::<Vec<_>>()
    );
}

#[test]
fn correlation_advantage_vanishes_on_independent_data() {
    // The structure comparison is driven by the data: on ρ = 0.85 data
    // the correlated structure wins by hundreds of nats; on ρ = 0 data
    // the two structures score within a few nats of each other (the
    // one-parameter Occam cost and the slightly different prior
    // strengths nearly cancel). Pin both magnitudes.
    let config = SearchConfig { tries_per_j: 3, ..SearchConfig::quick(vec![2], 5) };
    let gap = |rho: f64, seed: u64| -> f64 {
        let (data, _) = datagen::correlated_blobs(2, 10.0, rho, 2_000, seed);
        let ranked = compare_structures(&data.full_view(), &[vec![], vec![vec![0, 1]]], &config);
        let score_of = |blocks: &Vec<Vec<usize>>| {
            ranked
                .iter()
                .find(|(s, _)| s == blocks)
                .map(|(_, r)| r.best.score())
                .expect("structure present")
        };
        score_of(&vec![vec![0, 1]]) - score_of(&vec![])
    };
    let gap_corr = gap(0.85, 11);
    let gap_indep = gap(0.0, 13);
    assert!(gap_corr > 300.0, "correlated data should favor MVN strongly: {gap_corr}");
    assert!(
        gap_indep.abs() < 50.0,
        "independent data should make the structures nearly tie: {gap_indep}"
    );
    assert!(gap_corr > 10.0 * gap_indep.abs().max(1.0));
}

#[test]
fn mvn_posterior_prediction_uses_correlation() {
    // With strong correlation, a point that is marginally ambiguous can
    // be resolved by the joint structure.
    let (data, _) = datagen::correlated_blobs(2, 6.0, 0.9, 2_000, 17);
    let model = correlated_model(&data);
    let config = SearchConfig { tries_per_j: 3, ..SearchConfig::quick(vec![2], 5) };
    let result = search_with_model(&data.full_view(), &model, &config);
    if result.best.n_classes() == 2 {
        let p = autoclass::predict::posterior(
            &model,
            &result.best.classes,
            &[Value::Real(6.0), Value::Real(0.0)],
        );
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Near component 0's center (6, 0): should be decisive.
        assert!(p.iter().any(|&x| x > 0.95), "{p:?}");
    }
}

#[test]
fn mvn_class_params_flat_round_trip() {
    let (data, _) = datagen::correlated_blobs(2, 8.0, 0.5, 300, 19);
    let model = correlated_model(&data);
    let classes = init_classes(&model, &data.full_view(), 3, 23);
    let flat = autoclass::model::classes_to_flat(&classes);
    assert_eq!(flat.len(), 3 * model.class_param_len());
    let back = autoclass::model::classes_from_flat(&model, 3, &flat);
    assert_eq!(back, classes);
}

#[test]
fn mvn_marginal_and_prior_are_finite() {
    let (data, _) = datagen::correlated_blobs(2, 8.0, 0.5, 500, 29);
    let model = correlated_model(&data);
    let classes = init_classes(&model, &data.full_view(), 2, 31);
    let mut wts = WtsMatrix::new(0, 0);
    update_wts(&model, &data.full_view(), &classes, &mut wts);
    let mut stats = SuffStats::zeros(StatLayout::new(&model, 2));
    stats.accumulate(&model, &data.full_view(), &wts);
    for c in 0..2 {
        let m = model.groups[0].prior.log_marginal(stats.attr_stats(c, 0));
        assert!(m.is_finite(), "class {c} marginal {m}");
    }
    let (new_classes, _) = stats_to_classes(&model, &stats);
    let lp = autoclass::model::log_param_prior(&model, &new_classes);
    assert!(lp.is_finite(), "{lp}");
}

#[test]
#[should_panic(expected = "is not Real")]
fn correlated_block_rejects_discrete_attributes() {
    let (data, _) = datagen::protein_sequences(50, 3, 4, 2, 1);
    let stats = GlobalStats::compute(&data.full_view());
    let _ = Model::with_correlated(data.schema().clone(), &stats, &[vec![0, 1]]);
}

#[test]
#[should_panic(expected = "more than one block")]
fn overlapping_blocks_rejected() {
    let (data, _) = datagen::correlated_blobs(2, 8.0, 0.5, 50, 1);
    let stats = GlobalStats::compute(&data.full_view());
    let _ = Model::with_correlated(data.schema().clone(), &stats, &[vec![0, 1], vec![1, 0]]);
}

#[test]
fn parallel_mvn_matches_sequential() {
    // The correlated block's statistics ride the same Allreduce as
    // everything else; P-AutoClass with an MVN structure must agree with
    // the single-rank run.
    use pautoclass::{run_search, ParallelConfig};
    let (data, _) = datagen::correlated_blobs(3, 12.0, 0.7, 1_200, 41);
    let config = ParallelConfig {
        search: SearchConfig {
            start_j_list: vec![3],
            tries_per_j: 2,
            max_cycles: 60,
            ..SearchConfig::default()
        },
        correlated_blocks: vec![vec![0, 1]],
        ..ParallelConfig::default()
    };
    let seq = run_search(&data, &mpsim::presets::zero_cost(1), &config).unwrap();
    let par = run_search(&data, &mpsim::presets::zero_cost(6), &config).unwrap();
    assert_eq!(par.best.n_classes(), seq.best.n_classes());
    let rel = (par.best.score() - seq.best.score()).abs() / seq.best.score().abs().max(1.0);
    assert!(rel < 1e-5, "{} vs {}", par.best.score(), seq.best.score());
    assert_eq!(seq.best.n_classes(), 3);
}
